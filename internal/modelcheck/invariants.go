package modelcheck

// verify runs the state invariants after an action. opErr is the action's
// own operation error (nil, or a legal drop-schedule failure already
// classified by apply); it is accepted only so violations can mention it.
func (s *system) verify(a Action, opErr error) error {
	// Directory bookkeeping, on every manager in the deployment.
	for _, dm := range s.dms {
		if err := dm.CheckInvariants(); err != nil {
			return violationf("after %s: %v", a, err)
		}
	}

	ext, err := s.dm().ExtractPrimary(s.fullProps())
	if err != nil {
		return violationf("after %s: extract primary: %v", a, err)
	}

	// Per-key safety against the spec's write history. Write values are
	// globally unique, so value identity pins down exactly which write
	// (and which write *index*) a committed entry corresponds to.
	for k := 0; k < s.cfg.Keys; k++ {
		key := keyName(k)
		e, ok := ext.Get(key)
		if !ok || e.Deleted {
			return violationf("after %s: key %s vanished from the primary", a, key)
		}
		val := string(e.Value)
		switch {
		case e.Version < s.keyVer[key]:
			return violationf("after %s: primary version of %s regressed: v%d < v%d",
				a, key, e.Version, s.keyVer[key])
		case e.Version == s.keyVer[key]:
			if val != s.keyVal[key] {
				return violationf("after %s: %s changed value %q→%q without a version bump (v%d)",
					a, key, s.keyVal[key], val, e.Version)
			}
		default: // a new commit
			hk := e.Writer + "|" + key
			idx := -1
			for i, h := range s.hist[hk] {
				if h == val {
					idx = i
					break
				}
			}
			if idx < 0 {
				return violationf("after %s: primary holds %s=%q stamped writer %q, which that writer never wrote",
					a, key, val, e.Writer)
			}
			if idx < s.histIdx[hk] {
				return violationf("after %s: stale re-commit of %s=%q by %q (write #%d after write #%d was already committed)",
					a, key, val, e.Writer, idx, s.histIdx[hk])
			}
			s.histIdx[hk] = idx
			s.keyVer[key] = e.Version
			s.keyVal[key] = val
		}
	}

	cur := s.dm().CurrentVersion()
	reg0 := s.dm().Registry()
	for _, v := range s.views {
		if !v.alive {
			continue
		}
		// Record false-positive evictions (the view is live but the
		// directory wrote it off) — they downgrade what strong pulls may
		// assume about this view's pending updates.
		if reg0.Lost(v.name) {
			v.evicted = true
		}
		// A view can never have seen past the primary's commit counter.
		if seen := v.cm.Seen(); seen > cur {
			return violationf("after %s: %s has seen v%d but the primary is at v%d", a, v.name, seen, cur)
		}
		// A view with no pending updates has surrendered (or pushed)
		// everything it wrote; the model's dirty set follows.
		if v.cm.PendingOps() == 0 {
			v.dirty = map[string]bool{}
		}
	}

	// Strong-activation exclusivity as a *state* invariant: while a view
	// remains active from a pull taken in strong mode, no conflicting
	// live, non-evicted view may be active. Losing active status (being
	// invalidated, crashing, eviction) legally ends the claim.
	reg := s.dm().Registry()
	for _, v := range s.views {
		if !v.alive || !v.strongAct {
			continue
		}
		if !reg.Active(v.name) {
			v.strongAct = false
			continue
		}
		for _, w := range s.views {
			if w == v || !w.alive || reg.Lost(w.name) {
				continue
			}
			if reg.Conflicts(v.name, w.name) && reg.Active(w.name) {
				return violationf("after %s: %s is strong-active but conflicting view %s is active too",
					a, v.name, w.name)
			}
		}
	}
	return nil
}

// checkPushDurable asserts that every key of an acknowledged push is
// immediately readable from the primary at the pushed value (the store's
// default incoming-wins resolution guarantees it).
func (s *system) checkPushDurable(v *viewNode, pushed map[string]string) error {
	if len(pushed) == 0 {
		return nil
	}
	ext, err := s.dm().ExtractPrimary(s.fullProps())
	if err != nil {
		return violationf("push %s: extract primary: %v", v.name, err)
	}
	for k, want := range pushed {
		e, ok := ext.Get(k)
		if !ok || e.Deleted {
			return violationf("push %s: acknowledged %s=%q but the key is absent from the primary", v.name, k, want)
		}
		if got := string(e.Value); got != want {
			return violationf("push %s: acknowledged %s=%q but the primary reads %q (commit lost)", v.name, k, want, got)
		}
	}
	return nil
}

// checkPullFresh asserts that right after a successful pull the view
// agrees with the primary's committed state on every key it has not
// modified locally since its last synchronization.
func (s *system) checkPullFresh(v *viewNode) error {
	ext, err := s.dm().ExtractPrimary(s.fullProps())
	if err != nil {
		return violationf("pull %s: extract primary: %v", v.name, err)
	}
	for k := 0; k < s.cfg.Keys; k++ {
		key := keyName(k)
		if v.dirty[key] {
			continue
		}
		e, _ := ext.Get(key)
		if got := v.data.data[key]; got != string(e.Value) {
			return violationf("pull %s: stale read of %s after pull: view has %q, primary committed %q",
				v.name, key, got, e.Value)
		}
	}
	return nil
}

// checkStrongExclusive asserts the one-copy property at the moment a
// strong pull returns: no live, non-evicted conflicting peer is active or
// retains pending updates — they must all have been invalidated (their
// deltas gathered) by the pull. A peer the directory evicted as
// unreachable is exempt: the protocol's documented failure semantics
// sacrifice its pending updates instead of blocking the strong reader.
func (s *system) checkStrongExclusive(v *viewNode) error {
	reg := s.dm().Registry()
	for _, w := range s.views {
		if w == v || !w.alive || reg.Lost(w.name) {
			continue
		}
		if !reg.Conflicts(v.name, w.name) {
			continue
		}
		if reg.Active(w.name) {
			return violationf("strong pull %s: conflicting view %s is still active (one-copy violated)", v.name, w.name)
		}
		// A peer the directory once falsely evicted may retain pending
		// updates — they reconcile through push-time conflict detection
		// (the documented eviction semantics), not gathering.
		if p := w.cm.PendingOps(); p > 0 && !w.evicted {
			return violationf("strong pull %s: conflicting view %s retains %d pending update(s) that were never gathered",
				v.name, w.name, p)
		}
	}
	return nil
}

// quiesce runs the weak-convergence probe from the current state: every
// live view pushes, then every live view pulls, after which every live
// view must agree with the primary on every key. The probe's actions run
// through apply, so they are themselves invariant-checked; the returned
// schedule records them for counterexample rendering.
func (s *system) quiesce() ([]Action, error) {
	if s.primaryDown && s.active == 0 {
		// No directory is serving between crash-primary and
		// promote-standby; convergence is asserted again right after the
		// promotion transition.
		return nil, nil
	}
	var probe []Action
	for i, v := range s.views {
		if !v.alive {
			continue
		}
		a := Action{Kind: APush, View: i}
		probe = append(probe, a)
		if err := s.apply(a); err != nil {
			return probe, err
		}
	}
	for i, v := range s.views {
		if !v.alive {
			continue
		}
		a := Action{Kind: APull, View: i}
		probe = append(probe, a)
		if err := s.apply(a); err != nil {
			return probe, err
		}
	}
	ext, err := s.dm().ExtractPrimary(s.fullProps())
	if err != nil {
		return probe, violationf("quiescence: extract primary: %v", err)
	}
	for _, v := range s.views {
		if !v.alive {
			continue
		}
		for k := 0; k < s.cfg.Keys; k++ {
			key := keyName(k)
			var want string
			if e, ok := ext.Get(key); ok {
				want = string(e.Value)
			}
			if got := v.data.data[key]; got != want {
				return probe, violationf("quiescence: %s still disagrees with the primary on %s after push+pull everywhere: %q vs %q",
					v.name, key, got, want)
			}
		}
	}
	return probe, nil
}
