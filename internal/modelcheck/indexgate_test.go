package modelcheck

import "testing"

// The conflict-index regression gate: the registry's indexed conflict
// engine must be an invisible optimization at the protocol level. The
// explorer drives the real directory manager (and therefore the real
// indexed registry) through every bounded interleaving; if the index ever
// disagreed with the pairwise semantics — a missed conflict, a phantom
// one — the state space or an invariant would shift. Pinning the exact
// default-bound state count (and the mutant verdict) turns any such drift
// into a hard test failure instead of a silent behavior change.

// defaultBoundStates is the exact size of the default-bound state space
// (2 views, 1 key, 1 reconfiguration, depth 6, pipelined sessions on,
// failover on — dm!a inline-replicating to dm!b with crash-primary /
// promote-standby enabled; 2968 before the failover actions existed).
// Recompute deliberately (and update EXPERIMENTS.md E14) only when the
// action set itself changes.
const defaultBoundStates = 3492

func TestIndexedRegistryStateCountPinned(t *testing.T) {
	res, err := Explore(DefaultConfig())
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("unexpected counterexample with indexed registry:\n%s", res.Violation)
	}
	if res.States != defaultBoundStates {
		t.Fatalf("default-bound state count drifted: got %d states, pinned %d — "+
			"the conflict index (or the action set) changed protocol-visible behavior",
			res.States, defaultBoundStates)
	}
}

// TestIndexedRegistryMutantStillDies: the seeded skip-invalidation bug
// must still produce a counterexample with the indexed registry serving
// every conflict set — the index must not mask the mutant (e.g. by
// over-reporting conflicts and invalidating the skipped view through
// another path).
func TestIndexedRegistryMutantStillDies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipInvalidate = "v2"
	res, err := Explore(cfg)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if res.Violation == nil {
		t.Fatalf("seeded skip-invalidation bug went undetected with the indexed registry (%d states)", res.States)
	}
}

// TestExploreSetPropsHeavy: a set-props-heavy schedule — the whole
// reconfiguration budget spent on property changes, no other
// reconfiguration kinds competing for it — so every reachable
// (re-)indexing interleaving of the conflict index is explored: SetProps
// between a write and its push, between an invalidation round and the
// pull it serves, after a crash-marked tombstone, and so on.
func TestExploreSetPropsHeavy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Migrate = false
	cfg.Crash = false
	cfg.SetModes = false
	cfg.SetProps = true
	cfg.Reconfigs = 2
	res, err := Explore(cfg)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("set-props-heavy schedule found a counterexample:\n%s", res.Violation)
	}
	if res.States < 100 {
		t.Fatalf("suspiciously small set-props-heavy state space: %d states", res.States)
	}
	t.Logf("set-props-heavy: %d states, %d transitions, depth %d", res.States, res.Transitions, res.Depth)
}
