package modelcheck

import (
	"fmt"
	"strings"
	"time"

	"flecc/internal/trace"
	"flecc/internal/wire"
)

// Result summarizes one exploration.
type Result struct {
	// States is the number of distinct states discovered (including the
	// initial state); Transitions the number of transitions taken;
	// DedupHits the transitions that landed on an already-known state.
	States, Transitions, DedupHits int
	// Depth is the longest schedule that discovered a new state.
	Depth int
	// Violation is the first (shortest-schedule) invariant breach found,
	// nil when the explored space is clean.
	Violation *Counterexample
	// Aborted reports that MaxStates cut the exploration short.
	Aborted bool
	// Elapsed is the wall-clock exploration time.
	Elapsed time.Duration
}

// String renders a one-paragraph summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "explored %d states, %d transitions (%d deduplicated), max depth %d in %v",
		r.States, r.Transitions, r.DedupHits, r.Depth, r.Elapsed.Round(time.Millisecond))
	if r.Aborted {
		b.WriteString(" [aborted at state bound]")
	}
	if r.Violation != nil {
		b.WriteString("\n\n")
		b.WriteString(r.Violation.String())
	} else {
		b.WriteString("\nall invariants hold")
	}
	return b.String()
}

// Counterexample is a violating schedule, the violation, and the full
// message flow of its replay rendered as a sequence diagram.
type Counterexample struct {
	// Schedule is the action sequence that exhibits the violation,
	// including any quiescence-probe actions appended by the checker.
	Schedule []Action
	// ProbeFrom indexes the first quiescence-probe action in Schedule
	// (-1 when the violation needed no probe).
	ProbeFrom int
	// Violation describes the invariant breach.
	Violation error
	// Diagram is the replay's message flow in the Figure 2 sequence
	// format, one range of messages per action.
	Diagram string
	// MsgRanges gives, per schedule index, the [first, last) recorded
	// message indices of that action's replay.
	MsgRanges [][2]int
}

// String renders the counterexample: numbered schedule, violation, and
// the message-flow diagram.
func (c *Counterexample) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "counterexample (%d actions):\n", len(c.Schedule))
	for i, a := range c.Schedule {
		marker := ""
		if c.ProbeFrom >= 0 && i >= c.ProbeFrom {
			marker = "  (quiesce probe)"
		}
		rng := ""
		if i < len(c.MsgRanges) && c.MsgRanges[i][1] > c.MsgRanges[i][0] {
			rng = fmt.Sprintf("  [msgs %d..%d]", c.MsgRanges[i][0]+1, c.MsgRanges[i][1])
		}
		fmt.Fprintf(&b, "  %2d. %s%s%s\n", i+1, a, rng, marker)
	}
	fmt.Fprintf(&b, "violated: %v\n", c.Violation)
	if c.Diagram != "" {
		b.WriteString("\nmessage flow (Figure 2 format):\n")
		b.WriteString(c.Diagram)
	}
	return b.String()
}

// enumerate lists the actions enabled in a state, in a fixed canonical
// order: writes, pushes, pulls, then reconfigurations, migration last.
func enumerate(cfg Config, m meta) []Action {
	var out []Action
	budget := m.reconfigs < cfg.Reconfigs
	for i, v := range m.views {
		if !v.alive || !v.valid || v.writes >= cfg.WritesPerView {
			continue
		}
		for k := 0; k < cfg.Keys; k++ {
			if v.propsAlt && k != i%cfg.Keys {
				continue
			}
			out = append(out, Action{Kind: AWrite, View: i, Key: k})
		}
	}
	for i, v := range m.views {
		if v.alive && v.pending > 0 {
			out = append(out, Action{Kind: APush, View: i})
		}
	}
	if cfg.Pipeline {
		// push-async buffers a round only when there is something to carry
		// and no round is already waiting (a second call would coalesce
		// into the same round — no new state). flush is enabled exactly
		// while a round is buffered.
		for i, v := range m.views {
			if v.alive && v.pending > 0 && !v.buffered {
				out = append(out, Action{Kind: APushAsync, View: i})
			}
		}
		for i, v := range m.views {
			if v.alive && v.buffered {
				out = append(out, Action{Kind: AFlush, View: i})
			}
		}
	}
	for i, v := range m.views {
		if v.alive {
			out = append(out, Action{Kind: APull, View: i})
		}
	}
	if cfg.SetModes && budget {
		for i, v := range m.views {
			if !v.alive {
				continue
			}
			target := wire.Strong
			if v.mode == wire.Strong {
				target = wire.Weak
			}
			out = append(out, Action{Kind: ASetMode, View: i, Mode: target})
		}
	}
	if cfg.SetProps && budget {
		for i, v := range m.views {
			if v.alive && !v.propsAlt {
				out = append(out, Action{Kind: ASetProps, View: i})
			}
		}
	}
	if cfg.Crash {
		for i, v := range m.views {
			if v.alive && budget {
				out = append(out, Action{Kind: ACrash, View: i})
			} else if !v.alive {
				out = append(out, Action{Kind: ARevive, View: i})
			}
		}
	}
	if cfg.Migrate && budget && m.active == 0 && !m.primaryDown {
		out = append(out, Action{Kind: AMigrate})
	}
	if cfg.Failover {
		if budget && m.active == 0 && !m.primaryDown {
			out = append(out, Action{Kind: ACrashPrimary})
		}
		if m.primaryDown && m.active == 0 {
			// Recovery, like revive: free of the reconfiguration budget.
			out = append(out, Action{Kind: APromoteStandby})
		}
	}
	return out
}

// replay builds a fresh system and applies the schedule. It returns the
// live system, the index of the violating action (-1 if none), and the
// violation itself; a non-Violation error is an infrastructure failure.
func replay(cfg Config, schedule []Action, rec *trace.Recorder) (*system, int, error) {
	sys, err := newSystem(cfg, rec)
	if err != nil {
		return nil, -1, err
	}
	for i, a := range schedule {
		if err := sys.apply(a); err != nil {
			return sys, i, err
		}
	}
	return sys, -1, nil
}

// render re-replays a violating schedule with a trace recorder attached
// and packages the counterexample.
func render(cfg Config, schedule []Action, probeFrom int, verr error) *Counterexample {
	c := &Counterexample{Schedule: schedule, ProbeFrom: probeFrom, Violation: verr}
	rec := trace.NewRecorder(4096)
	sys, err := newSystem(cfg, rec)
	if err != nil {
		return c
	}
	for _, a := range schedule {
		start := rec.Total()
		aerr := sys.apply(a)
		c.MsgRanges = append(c.MsgRanges, [2]int{start, rec.Total()})
		if aerr != nil {
			break
		}
	}
	c.Diagram = rec.String()
	return c
}

// Explore runs the bounded breadth-first search and reports what it
// found. It returns an error only for infrastructure failures (a
// mis-built system); invariant violations come back inside the Result.
func Explore(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	res := &Result{}
	done := func() *Result {
		res.Elapsed = time.Since(start)
		return res
	}

	type node struct {
		path []Action
		m    meta
	}

	// The initial state: verified, fingerprinted, quiesce-probed.
	sys, err := newSystem(cfg, nil)
	if err != nil {
		return nil, err
	}
	if verr := sys.verify(Action{Kind: AQuiesceProbe}, nil); verr != nil {
		res.Violation = render(cfg, nil, -1, verr)
		return done(), nil
	}
	visited := map[string]bool{sys.fingerprint(): true}
	res.States = 1
	initMeta := sys.observe()
	if cfg.Quiesce && cfg.DropMessage == 0 {
		if probe, verr := sys.quiesce(); verr != nil {
			res.Violation = render(cfg, probe, 0, verr)
			return done(), nil
		}
	}

	queue := []node{{path: nil, m: initMeta}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if len(n.path) >= cfg.Depth {
			continue
		}
		for _, a := range enumerate(cfg, n.m) {
			res.Transitions++
			schedule := make([]Action, len(n.path)+1)
			copy(schedule, n.path)
			schedule[len(n.path)] = a
			child, badIdx, err := replay(cfg, schedule, nil)
			if err != nil {
				if v, ok := err.(*Violation); ok {
					res.Violation = render(cfg, schedule[:badIdx+1], -1, v)
					return done(), nil
				}
				return nil, err
			}
			fp := child.fingerprint()
			if visited[fp] {
				res.DedupHits++
				continue
			}
			visited[fp] = true
			res.States++
			if d := len(schedule); d > res.Depth {
				res.Depth = d
			}
			childMeta := child.observe()
			if cfg.Quiesce && cfg.DropMessage == 0 {
				if probe, verr := child.quiesce(); verr != nil {
					res.Violation = render(cfg, append(schedule, probe...), len(schedule), verr)
					return done(), nil
				}
			}
			if cfg.MaxStates > 0 && res.States >= cfg.MaxStates {
				res.Aborted = true
				return done(), nil
			}
			queue = append(queue, node{path: schedule, m: childMeta})
		}
	}
	return done(), nil
}
