package modelcheck

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"flecc/internal/cache"
	"flecc/internal/directory"
	"flecc/internal/image"
	"flecc/internal/netsim"
	"flecc/internal/property"
	"flecc/internal/trace"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// Violation is an invariant breach found while applying an action. It is
// the only error kind apply returns for protocol misbehavior;
// infrastructure failures (bad config, attach errors) surface as plain
// errors from newSystem instead.
type Violation struct{ Msg string }

func (v *Violation) Error() string { return v.Msg }

func violationf(format string, args ...any) error {
	return &Violation{Msg: fmt.Sprintf(format, args...)}
}

// kvstore is the model's application component and view state: a plain
// string map codec. Like the protocol test suite's kvView, it ignores the
// property restriction on extract — properties drive conflict accounting,
// not data slicing — which keeps set-props reconfigurations from
// synthesizing spurious deletions.
type kvstore struct {
	data map[string]string
}

func newKVStore() *kvstore { return &kvstore{data: map[string]string{}} }

// Extract implements image.Extractor.
func (s *kvstore) Extract(props property.Set) (*image.Image, error) {
	img := image.New(props.Clone())
	for k, v := range s.data {
		img.Put(image.Entry{Key: k, Value: []byte(v)})
	}
	return img, nil
}

// Merge implements image.Merger.
func (s *kvstore) Merge(img *image.Image, props property.Set) error {
	for k, e := range img.Entries {
		if e.Deleted {
			delete(s.data, k)
			continue
		}
		s.data[k] = string(e.Value)
	}
	return nil
}

// viewNode is the model's bookkeeping for one view: the application state,
// the live cache manager, and the spec-side counters the invariants use.
type viewNode struct {
	idx  int
	name string
	data *kvstore
	cm   *cache.Manager
	// alive is false between crash and revive.
	alive bool
	// mode mirrors the view's consistency mode (revive restores it).
	mode wire.Mode
	// writes counts writes performed (unique-value generation + budget).
	writes int
	// propsAlt marks that set-props narrowed the view to its alt set.
	propsAlt bool
	// dirty is the set of keys written since the view last synchronized
	// (push, or surrender via invalidate/gather).
	dirty map[string]bool
	// strongAct marks that the view's current activation was acquired by
	// a pull in strong mode — the activation one-copy serializability
	// covers. Init and weak pulls grant weak-grade activation.
	strongAct bool
	// evicted marks that the directory evicted this view as unreachable
	// at some point while it was actually live (a false-positive
	// eviction, e.g. a dropped invalidate). Its pending updates are then
	// reconciled by push-time conflict detection rather than gathering,
	// so the strong-exclusivity pending check exempts it. Reset by a
	// successful revive.
	evicted bool
}

// system is one deterministic instance of the deployment under test plus
// the model's spec-tracking state. It is rebuilt from scratch for every
// replayed schedule.
type system struct {
	cfg   Config
	clock *vclock.Sim
	net   *netsim.Net
	rec   *trace.Recorder
	prim  *kvstore
	dms   []*directory.Manager
	// active indexes the directory manager currently serving the views.
	active int
	ctl    transport.Endpoint
	views  []*viewNode
	// reconfigs counts reconfiguration actions applied.
	reconfigs int
	// primaryDown marks dm!a crashed (ACrashPrimary). Until
	// APromoteStandby re-points the forwarder, client calls fail.
	primaryDown bool
	// dead names crashed views; the netsim delivery hook fails messages
	// addressed to them.
	dead map[string]bool
	// ready is set once construction finishes; the DropMessage schedule
	// counts only post-construction requests (a drop during setup would
	// just mean the system never comes up).
	ready bool
	// delivered counts hook-inspected requests (DropMessage schedule).
	delivered int

	// Per-key spec tracking: the last observed committed (version, value)
	// and, per writer|key, the values written (in order) and the highest
	// committed write index observed — the ground truth for the no-lost /
	// no-regression / no-resurrection invariants.
	keyVer  map[string]vclock.Version
	keyVal  map[string]string
	hist    map[string][]string
	histIdx map[string]int
}

func keyName(i int) string { return fmt.Sprintf("k%d", i) }

func (s *system) fullProps() property.Set {
	members := make([]string, s.cfg.Keys)
	for i := range members {
		members[i] = keyName(i)
	}
	return property.NewSet(property.New("K", property.Discrete(members...)))
}

func (s *system) altProps(viewIdx int) property.Set {
	return property.NewSet(property.New("K", property.Discrete(keyName(viewIdx%s.cfg.Keys))))
}

func (s *system) propsFor(v *viewNode) property.Set {
	if v.propsAlt {
		return s.altProps(v.idx)
	}
	return s.fullProps()
}

// keyAllowed reports whether the view may write key k under its current
// property set.
func (s *system) keyAllowed(v *viewNode, k int) bool {
	return !v.propsAlt || k == v.idx%s.cfg.Keys
}

func (s *system) dm() *directory.Manager { return s.dms[s.active] }

func (s *system) dmNodeName() string {
	if len(s.dms) == 1 {
		return "dm"
	}
	if s.active == 0 {
		return "dm!a"
	}
	return "dm!b"
}

// newSystem builds the initial deployment: the directory side (one manager,
// or two plus a routing forwarder when migration is enabled), the views
// (registered and initialized), the seeded primary data, and the spec
// baselines. rec, when non-nil, observes every message for counterexample
// rendering.
func newSystem(cfg Config, rec *trace.Recorder) (*system, error) {
	cfg = cfg.withDefaults()
	clock := vclock.NewSim()
	net := netsim.New(clock, netsim.LAN(1))
	if rec != nil {
		net.AddObserver(rec)
	}
	s := &system{
		cfg:     cfg,
		clock:   clock,
		net:     net,
		rec:     rec,
		prim:    newKVStore(),
		dead:    map[string]bool{},
		keyVer:  map[string]vclock.Version{},
		keyVal:  map[string]string{},
		hist:    map[string][]string{},
		histIdx: map[string]int{},
	}
	net.SetDeliveryHook(func(from, to string, m *wire.Message) error {
		if s.ready {
			s.delivered++
			if cfg.DropMessage > 0 && s.delivered == cfg.DropMessage {
				return fmt.Errorf("modelcheck: scheduled drop of request %d (%s %s→%s)", s.delivered, m.Type, from, to)
			}
		}
		if s.dead[to] {
			return fmt.Errorf("modelcheck: view %s crashed", to)
		}
		return nil
	})

	// Seed the primary with one initial value per key; writer "" is the
	// primary itself.
	for k := 0; k < cfg.Keys; k++ {
		key := keyName(k)
		val := "init-" + key
		s.prim.data[key] = val
		s.hist["|"+key] = []string{val}
		s.keyVal[key] = val
		s.keyVer[key] = 0
	}

	opts := directory.Options{
		FanOut:          1,
		Retry:           transport.RetryPolicy{Attempts: 1},
		PropagateOnPush: cfg.PropagateOnPush,
	}
	if cfg.SkipInvalidate != "" {
		skip := cfg.SkipInvalidate
		opts.InvalFilter = func(requester string, targets []string) []string {
			out := targets[:0:0]
			for _, t := range targets {
				if t != skip {
					out = append(out, t)
				}
			}
			return out
		}
	}

	place := func(node string) { s.net.Topology().Place(node, "h-"+node) }
	if cfg.Migrate || cfg.Failover {
		// Two directory managers share the primary codec (the documented
		// single-primary shard deployment); views dial the forwarder
		// "dm", which wraps every request in the shard router's TRouted
		// envelope toward whichever manager currently serves them.
		for _, name := range []string{"dm!a", "dm!b"} {
			dm, err := directory.New(name, s.prim, clock, net, opts)
			if err != nil {
				return nil, err
			}
			s.dms = append(s.dms, dm)
			place(name)
		}
		var fwd transport.Endpoint
		fwd, err := net.Attach("dm", func(req *wire.Message) *wire.Message {
			inner := *req
			inner.Pre = nil
			env := &wire.Message{Type: wire.TRouted, View: req.From, Blob: wire.Encode(&inner)}
			reply, err := fwd.Call(s.dmNodeName(), env)
			if err != nil {
				if reply != nil {
					return reply
				}
				return &wire.Message{Type: wire.TErr, Err: err.Error()}
			}
			return reply
		})
		if err != nil {
			return nil, err
		}
		place("dm")
		ctl, err := net.Attach("ctl", func(req *wire.Message) *wire.Message {
			return &wire.Message{Type: wire.TErr, Err: "modelcheck: ctl serves no requests"}
		})
		if err != nil {
			return nil, err
		}
		s.ctl = ctl
		place("ctl")
		if cfg.Failover {
			// dm!a replicates inline to dm!b: every mutating request's
			// reply barriers on the standby having absorbed it, on the
			// caller's goroutine — deterministic, so replays stay pure
			// functions of the schedule. dm!b is a serving replica, not
			// Options.Standby-gated, so Migrate and Failover coexist: it
			// absorbs replication batches and migration handovers alike.
			// Attempts:3 lets a single scheduled drop of a TReplicate be
			// retried instead of failing the client's request.
			_, err := s.dms[0].StartReplication(directory.ReplConfig{
				Inline: true,
				Retry:  transport.RetryPolicy{Attempts: 3, Sleep: func(time.Duration) {}},
			}, directory.ReplTarget{Name: "dm!b"})
			if err != nil {
				return nil, err
			}
		}
	} else {
		dm, err := directory.New("dm", s.prim, clock, net, opts)
		if err != nil {
			return nil, err
		}
		s.dms = append(s.dms, dm)
		place("dm")
	}

	for i := 0; i < cfg.Views; i++ {
		v := &viewNode{
			idx:   i,
			name:  fmt.Sprintf("v%d", i+1),
			data:  newKVStore(),
			alive: true,
			mode:  wire.Weak,
			dirty: map[string]bool{},
		}
		if i == 0 {
			v.mode = wire.Strong
		}
		place(v.name)
		cm, err := s.attachView(v)
		if err != nil {
			return nil, err
		}
		v.cm = cm
		s.views = append(s.views, v)
	}
	for _, v := range s.views {
		if err := v.cm.InitImage(); err != nil {
			return nil, fmt.Errorf("modelcheck: init %s: %w", v.name, err)
		}
	}
	s.ready = true
	return s, nil
}

// attachView builds a cache manager for the view's current mode and
// property set (initial construction and revive share it). Under
// Config.Pipeline the manager runs with ManualFlush so buffered async
// rounds dispatch only when an explicit action (flush, or a draining
// synchronous operation) says so — the explorer stays the sole scheduler.
func (s *system) attachView(v *viewNode) (*cache.Manager, error) {
	return cache.New(cache.Config{
		Name:            v.name,
		Directory:       "dm",
		Net:             s.net,
		View:            v.data,
		Props:           s.propsFor(v),
		Mode:            v.mode,
		ValidityTrigger: s.cfg.Validity,
		Clock:           s.clock,
		ManualFlush:     s.cfg.Pipeline,
	})
}

// opLegal classifies an action-level operation error: under a DropMessage
// schedule, a failure of the acting view's own call is the legal surface
// of the dropped message — either directly as a transport error, or
// wrapped into a remote error by the routing forwarder when the drop hit
// its inner hop. While the primary is crashed and not yet failed over,
// any failure tracing to the dead dm!a is likewise legal. Everything else
// is a violation.
func (s *system) opLegal(err error) bool {
	if err == nil {
		return false
	}
	if s.primaryDown && s.active == 0 {
		if transport.IsTransportError(err) ||
			errors.Is(err, cache.ErrSessionReset) ||
			strings.Contains(err.Error(), "dm!a crashed") {
			return true
		}
	}
	if s.cfg.DropMessage == 0 {
		return false
	}
	return transport.IsTransportError(err) ||
		errors.Is(err, cache.ErrSessionReset) ||
		strings.Contains(err.Error(), "modelcheck: scheduled drop")
}

// apply performs one action and runs every invariant. A *Violation return
// is a counterexample; nil means the transition is clean.
func (s *system) apply(a Action) error {
	kind := a.Kind
	if kind == AQuiesceProbe {
		kind = APull
	}
	switch kind {
	case AWrite:
		v := s.views[a.View]
		if err := v.cm.StartUse(); err != nil {
			return violationf("write %s: start-use failed on a valid view: %v", v.name, err)
		}
		v.writes++
		key := keyName(a.Key)
		val := fmt.Sprintf("%s.%d", v.name, v.writes)
		v.data.data[key] = val
		v.cm.EndUse()
		v.dirty[key] = true
		s.hist[v.name+"|"+key] = append(s.hist[v.name+"|"+key], val)
		return s.verify(a, nil)

	case APush:
		v := s.views[a.View]
		pushed := map[string]string{}
		for k := range v.dirty {
			pushed[k] = v.data.data[k]
		}
		err := v.cm.PushImage()
		if err != nil && !s.opLegal(err) {
			return violationf("push %s failed: %v", v.name, err)
		}
		if err == nil {
			v.dirty = map[string]bool{}
			if verr := s.checkPushDurable(v, pushed); verr != nil {
				return verr
			}
		}
		return s.verify(a, err)

	case APushAsync:
		// Buffer a coalesced round. Under ManualFlush nothing reaches the
		// wire here, so the only legal immediate resolution is an error —
		// and on a live, initialized view there is none to have.
		v := s.views[a.View]
		fut := v.cm.PushImageAsync()
		select {
		case <-fut.Done():
			if err := fut.Wait(); err != nil {
				return violationf("push-async %s resolved eagerly with %v", v.name, err)
			}
		default:
		}
		return s.verify(a, nil)

	case AFlush:
		// Dispatch the buffered round and wait it out. Success carries the
		// same obligations as a synchronous push: the delta is extracted at
		// dispatch, so it covers every key dirty right now.
		v := s.views[a.View]
		pushed := map[string]string{}
		for k := range v.dirty {
			pushed[k] = v.data.data[k]
		}
		err := v.cm.Flush()
		if err != nil && !s.opLegal(err) {
			return violationf("flush %s failed: %v", v.name, err)
		}
		if err == nil {
			v.dirty = map[string]bool{}
			if verr := s.checkPushDurable(v, pushed); verr != nil {
				return verr
			}
		}
		return s.verify(a, err)

	case APull:
		v := s.views[a.View]
		mode := v.cm.Mode()
		err := v.cm.PullImage()
		if err != nil && !s.opLegal(err) {
			return violationf("pull %s failed: %v", v.name, err)
		}
		if err == nil {
			v.strongAct = mode == wire.Strong
			if verr := s.checkPullFresh(v); verr != nil {
				return verr
			}
			if mode == wire.Strong {
				if verr := s.checkStrongExclusive(v); verr != nil {
					return verr
				}
			}
		}
		return s.verify(a, err)

	case ASetMode:
		v := s.views[a.View]
		err := v.cm.SetMode(a.Mode)
		if err != nil && !s.opLegal(err) {
			return violationf("set-mode %s failed: %v", v.name, err)
		}
		if err == nil {
			v.mode = a.Mode
			if a.Mode == wire.Weak {
				// Dropping to weak relinquishes the one-copy claim.
				v.strongAct = false
			}
		}
		s.reconfigs++
		return s.verify(a, err)

	case ASetProps:
		v := s.views[a.View]
		err := v.cm.SetProps(s.altProps(v.idx))
		if err != nil && !s.opLegal(err) {
			return violationf("set-props %s failed: %v", v.name, err)
		}
		if err == nil {
			v.propsAlt = true
		}
		s.reconfigs++
		return s.verify(a, err)

	case ACrash:
		v := s.views[a.View]
		s.dead[v.name] = true
		v.alive = false
		v.strongAct = false
		// Un-pushed writes die with the component.
		v.dirty = map[string]bool{}
		s.reconfigs++
		return s.verify(a, nil)

	case ARevive:
		v := s.views[a.View]
		delete(s.dead, v.name)
		s.net.Detach(v.name)
		v.data = newKVStore()
		cm, err := s.attachView(v)
		if err != nil {
			if s.opLegal(err) {
				// The re-register call was the dropped message; the view
				// stays down and may retry in a later action.
				s.net.Detach(v.name)
				s.dead[v.name] = true
				return s.verify(a, err)
			}
			return violationf("revive %s: re-register failed: %v", v.name, err)
		}
		v.cm = cm
		if err := cm.InitImage(); err != nil {
			if s.opLegal(err) {
				return s.verify(a, err)
			}
			return violationf("revive %s: init failed: %v", v.name, err)
		}
		v.alive = true
		v.evicted = false
		// Init activates the view without an invalidation round (the
		// modeling note in the package doc): a conflicting revival
		// therefore legally ends a standing strong claim, the same way
		// the claim begins only at a pull.
		reg := s.dm().Registry()
		for _, w := range s.views {
			if w != v && w.strongAct && reg.Conflicts(v.name, w.name) {
				w.strongAct = false
			}
		}
		return s.verify(a, nil)

	case AMigrate:
		// The handover runs over the wire exactly as the shard router
		// drives it; a bounded retry absorbs a scheduled drop between
		// take and apply, as the router's retry policy would.
		blob, err := directory.EncodeViewList(nil)
		if err != nil {
			return violationf("migrate: encode view list: %v", err)
		}
		takeReply, err := callRetry(s.ctl, "dm!a", &wire.Message{Type: wire.TMigrateTake, Blob: blob})
		if err != nil {
			return violationf("migrate: take failed: %v", err)
		}
		if _, err := callRetry(s.ctl, "dm!b", &wire.Message{Type: wire.TMigrateApply, Blob: takeReply.Blob}); err != nil {
			return violationf("migrate: apply failed: %v", err)
		}
		s.active = 1
		s.reconfigs++
		return s.verify(a, nil)

	case ACrashPrimary:
		// Kill dm!a at the network; its in-memory state stays inspectable
		// (the invariants read it directly), but no message reaches it —
		// the barrier guarantee is now all the standby has.
		s.dead["dm!a"] = true
		s.primaryDown = true
		s.reconfigs++
		return s.verify(a, nil)

	case APromoteStandby:
		msg, err := directory.PromoteMessage(s.dms[1].Epoch() + 1)
		if err != nil {
			return violationf("promote-standby: build promote batch: %v", err)
		}
		if _, err := callRetry(s.ctl, "dm!b", msg); err != nil {
			return violationf("promote-standby failed: %v", err)
		}
		s.active = 1
		return s.verify(a, nil)
	}
	return fmt.Errorf("modelcheck: unknown action kind %d", a.Kind)
}

// callRetry is transport.CallRetry with sleeps elided (the model runs on
// virtual time).
func callRetry(ep transport.Endpoint, to string, req *wire.Message) (*wire.Message, error) {
	return transport.CallRetry(ep, to, req, transport.RetryPolicy{
		Attempts: 3,
		Sleep:    func(time.Duration) {},
	})
}

// viewMeta is the slice of a view's state the enumerator needs to decide
// which actions are enabled, captured when the state is discovered so
// enumeration needs no live system instance.
type viewMeta struct {
	alive    bool
	valid    bool
	pending  int
	writes   int
	propsAlt bool
	mode     wire.Mode
	// buffered marks an asynchronous push round waiting for dispatch
	// (Config.Pipeline).
	buffered bool
}

// meta captures the enabled-action inputs of a state.
type meta struct {
	views       []viewMeta
	reconfigs   int
	active      int
	primaryDown bool
}

func (s *system) observe() meta {
	m := meta{reconfigs: s.reconfigs, active: s.active, primaryDown: s.primaryDown}
	for _, v := range s.views {
		vm := viewMeta{alive: v.alive, writes: v.writes, propsAlt: v.propsAlt, mode: v.mode}
		if v.alive {
			vm.valid = v.cm.Valid()
			vm.pending = v.cm.PendingOps()
			vm.buffered = v.cm.PushPending()
		}
		m.views = append(m.views, vm)
	}
	return m
}

// fingerprint folds the full observable state into a canonical string:
// directory bookkeeping (registry, view states, store log and stamped
// primary content), every view's data/base/counters, and the model's own
// budgets. Virtual-time stamps are deliberately excluded — no trigger in
// the model references time, so two states equal modulo the clock have
// identical futures and deduplicating them is sound.
func (s *system) fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "active=%d reconfigs=%d pdown=%t\n", s.active, s.reconfigs, s.primaryDown)
	for di, dm := range s.dms {
		reg := dm.Registry()
		fmt.Fprintf(&b, "dm%d ver=%d\n", di, dm.CurrentVersion())
		for _, name := range reg.Views() {
			props, _ := reg.Props(name)
			fmt.Fprintf(&b, " reg %s props=%s mode=%s seen=%d active=%t lost=%t\n",
				name, props, dm.Mode(name), dm.Seen(name), reg.Active(name), reg.Lost(name))
		}
		for _, rec := range dm.Store().Log() {
			fmt.Fprintf(&b, " log v%d w=%q ops=%d props=%s\n", rec.Version, rec.Writer, rec.Ops, rec.Props)
		}
	}
	if ext, err := s.dm().ExtractPrimary(s.fullProps()); err == nil {
		for _, k := range ext.Keys() {
			e := ext.Entries[k]
			fmt.Fprintf(&b, "prim %s=%q v%d w=%q del=%t\n", k, e.Value, e.Version, e.Writer, e.Deleted)
		}
	} else {
		fmt.Fprintf(&b, "prim err=%v\n", err)
	}
	for _, v := range s.views {
		fmt.Fprintf(&b, "view %s alive=%t mode=%s writes=%d alt=%t strong=%t evicted=%t dirty=%s\n",
			v.name, v.alive, v.mode, v.writes, v.propsAlt, v.strongAct, v.evicted, sortedKeys(v.dirty))
		if !v.alive {
			continue
		}
		fmt.Fprintf(&b, " cm valid=%t pending=%d seen=%d mode=%s buffered=%t\n",
			v.cm.Valid(), v.cm.PendingOps(), v.cm.Seen(), v.cm.Mode(), v.cm.PushPending())
		keys := make([]string, 0, len(v.data.data))
		for k := range v.data.data {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " data %s=%q\n", k, v.data.data[k])
		}
		if base := v.cm.Base(); base != nil {
			for _, k := range base.Keys() {
				e := base.Entries[k]
				fmt.Fprintf(&b, " base %s=%q v%d w=%q del=%t\n", k, e.Value, e.Version, e.Writer, e.Deleted)
			}
		}
	}
	return b.String()
}

func sortedKeys(m map[string]bool) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}
