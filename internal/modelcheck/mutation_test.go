package modelcheck

import (
	"strings"
	"testing"
)

// TestMutationSkipInvalidateCaught is the checker's own soundness check: a
// deliberately seeded protocol bug — the directory silently skips view v2
// when invalidating (directory.Options.InvalFilter) — must produce a
// counterexample, and the counterexample must carry a usable diagnosis: a
// violating schedule and the replay's message flow rendered in the
// Figure 2 sequence-diagram format.
func TestMutationSkipInvalidateCaught(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipInvalidate = "v2"
	res, err := Explore(cfg)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	ce := res.Violation
	if ce == nil {
		t.Fatalf("seeded skip-invalidation bug went undetected (%d states, %d transitions)",
			res.States, res.Transitions)
	}
	if len(ce.Schedule) == 0 {
		t.Fatalf("counterexample has an empty schedule:\n%s", ce)
	}
	if ce.Violation == nil {
		t.Fatalf("counterexample carries no violation:\n%s", ce)
	}
	// The bug leaves v2 active (or holding pending updates) across a
	// strong pull — the violation must name the conflicting view.
	if !strings.Contains(ce.Violation.Error(), "v2") {
		t.Errorf("violation does not name the skipped view: %v", ce.Violation)
	}
	// The Figure-2 diagram must show the actual message flow of the
	// violating replay: the strong puller's pull reaching the directory,
	// and no invalidate ever reaching v2.
	if ce.Diagram == "" {
		t.Fatalf("counterexample has no message-flow diagram:\n%s", ce)
	}
	if !strings.Contains(ce.Diagram, "pull") {
		t.Errorf("diagram misses the pull that should have invalidated:\n%s", ce.Diagram)
	}
	for _, line := range strings.Split(ce.Diagram, "\n") {
		if strings.Contains(line, "invalidate") && strings.Contains(line, "> v2") {
			t.Errorf("mutated directory still invalidated v2: %s", line)
		}
	}
	// The rendered form ties it together for humans and CI logs.
	out := ce.String()
	for _, want := range []string{"counterexample", "violated:", "message flow (Figure 2 format):"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered counterexample missing %q:\n%s", want, out)
		}
	}
}

// TestMutationOtherViewAlsoCaught: skipping the strong view itself (v1)
// must be caught as well — a weak pull's gather round that skips the
// strong holder breaks exclusivity from the other side.
func TestMutationOtherViewAlsoCaught(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipInvalidate = "v1"
	res, err := Explore(cfg)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if res.Violation == nil {
		t.Fatalf("seeded skip-invalidation of v1 went undetected (%d states)", res.States)
	}
}
