package experiments

import (
	"strings"
	"testing"
)

func TestBuyerMixSweep(t *testing.T) {
	cfg := BuyerMixConfig{
		Clients:   4,
		Sessions:  3,
		Fractions: []float64{0, 0.5, 1},
		Capacity:  2,
		Seed:      11,
	}
	res, err := RunBuyerMix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
	// The zero-fraction row has no buys; the full-fraction row has
	// clients*sessions.
	if res.Rows[0].Buys != 0 || res.Rows[2].Buys != 12 {
		t.Fatalf("buys: %d / %d", res.Rows[0].Buys, res.Rows[2].Buys)
	}
	out := res.Table().String()
	if !strings.Contains(out, "buyer-mix") || !strings.Contains(out, "0.50") {
		t.Fatalf("table = %q", out)
	}
}

func TestBuyerMixDeterministic(t *testing.T) {
	cfg := BuyerMixConfig{Clients: 3, Sessions: 2, Fractions: []float64{0.5}, Capacity: 2, Seed: 5}
	a, err := RunBuyerMix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBuyerMix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows[0] != b.Rows[0] {
		t.Fatalf("non-deterministic: %+v vs %+v", a.Rows[0], b.Rows[0])
	}
}

func TestBuyerMixValidation(t *testing.T) {
	if _, err := RunBuyerMix(BuyerMixConfig{}); err == nil {
		t.Fatal("zero config should fail")
	}
}

func TestBuyerMixDefault(t *testing.T) {
	res, err := RunBuyerMix(DefaultBuyerMix())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
}
