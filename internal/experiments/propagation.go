package experiments

import (
	"fmt"
	"io"

	"flecc/internal/metrics"
	"flecc/internal/wire"
)

// --- Ablation E10: update distribution — pull-based vs push-based ----------
//
// Flecc distributes weak-mode updates on demand: a view learns of remote
// changes when it pulls (optionally gathered by validity triggers). The
// classic alternative is an update protocol: the directory manager
// forwards every committed push to the interested views immediately
// (Options.PropagateOnPush, carried by TUpdate messages). This ablation
// sweeps the write rate under a fixed read workload to expose the
// crossover: push-based distribution keeps readers perfectly fresh and is
// cheap when writes are rare, but its cost grows with writes × sharers,
// while pull-based cost tracks the read rate.

// PropagationRow is one swept point.
type PropagationRow struct {
	// Writes performed (and pushed) by the single writer.
	Writes int
	// Messages per variant.
	MessagesPull, MessagesPush int64
	// MeanStaleness is the average reader-side quality (unseen remote
	// updates at read time) per variant.
	StalenessPull, StalenessPush float64
}

// PropagationResult is the sweep outcome.
type PropagationResult struct {
	Readers, ReadsPerReader int
	Rows                    []PropagationRow
}

// PropagationConfig parameterizes the sweep.
type PropagationConfig struct {
	// Readers is the number of reading agents (plus one writer).
	Readers int
	// ReadsPerReader is the fixed read workload.
	ReadsPerReader int
	// WriteSweep lists the writer op counts to sweep.
	WriteSweep []int
}

// DefaultPropagation returns the documented default sweep.
func DefaultPropagation() PropagationConfig {
	return PropagationConfig{
		Readers:        5,
		ReadsPerReader: 10,
		WriteSweep:     []int{1, 5, 10, 20},
	}
}

// RunPropagation executes the sweep.
func RunPropagation(cfg PropagationConfig) (*PropagationResult, error) {
	if cfg.Readers <= 0 || cfg.ReadsPerReader <= 0 || len(cfg.WriteSweep) == 0 {
		return nil, fmt.Errorf("propagation: need positive Readers/ReadsPerReader and a sweep")
	}
	res := &PropagationResult{Readers: cfg.Readers, ReadsPerReader: cfg.ReadsPerReader}
	for _, w := range cfg.WriteSweep {
		row := PropagationRow{Writes: w}
		for _, pushBased := range []bool{false, true} {
			msgs, stale, err := runPropagationOnce(cfg, w, pushBased)
			if err != nil {
				return nil, fmt.Errorf("propagation w=%d push=%v: %w", w, pushBased, err)
			}
			if pushBased {
				row.MessagesPush = msgs
				row.StalenessPush = stale
			} else {
				row.MessagesPull = msgs
				row.StalenessPull = stale
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runPropagationOnce(cfg PropagationConfig, writes int, pushBased bool) (int64, float64, error) {
	d, err := NewDeployment(DeployConfig{
		Protocol:        ProtoFlecc,
		Agents:          cfg.Readers + 1,
		GroupSize:       cfg.Readers + 1,
		FlightsPerGroup: 5,
		Mode:            wire.Weak,
		PropagateOnPush: pushBased,
	})
	if err != nil {
		return 0, 0, err
	}
	defer d.Close()
	d.Stats.Reset()

	writer := d.Agents[0]
	readers := d.Agents[1:]
	flight := d.FirstFlightOf(0)

	// Interleave: spread the writes evenly across the read rounds.
	totalRounds := cfg.ReadsPerReader
	writesDone := 0
	staleSamples := 0
	staleTotal := 0.0
	for round := 0; round < totalRounds; round++ {
		// Writer's share of this round.
		due := (round + 1) * writes / totalRounds
		for writesDone < due {
			if err := writer.CM.StartUse(); err != nil {
				return 0, 0, err
			}
			if err := writer.ARS.ConfirmTickets(1, flight); err != nil {
				return 0, 0, err
			}
			writer.CM.EndUse()
			if err := writer.CM.PushImage(); err != nil {
				return 0, 0, err
			}
			writesDone++
		}
		for ri, rd := range readers {
			if !pushBased {
				// Pull-based readers refresh explicitly before reading.
				if err := rd.CM.PullImage(); err != nil {
					return 0, 0, err
				}
			}
			// Staleness of the data used for the read.
			staleTotal += float64(d.Quality(1 + ri))
			staleSamples++
			if err := rd.CM.StartUse(); err != nil {
				return 0, 0, err
			}
			rd.ARS.Browse("", "")
			rd.CM.EndUse()
			// Reads do not modify data and must not count as pending
			// updates against the other readers' staleness samples; an
			// (empty, message-free) push clears the use counter.
			if err := rd.CM.PushImage(); err != nil {
				return 0, 0, err
			}
		}
	}
	mean := 0.0
	if staleSamples > 0 {
		mean = staleTotal / float64(staleSamples)
	}
	return d.Stats.Total(), mean, nil
}

// Table renders the sweep.
func (r *PropagationResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E10 — update distribution: pull-based vs push-based (%d readers × %d reads)",
			r.Readers, r.ReadsPerReader),
		"writes", "pull-msgs", "push-msgs", "pull-staleness", "push-staleness")
	for _, row := range r.Rows {
		t.AddRowf("", row.Writes, row.MessagesPull, row.MessagesPush,
			fmt.Sprintf("%.2f", row.StalenessPull), fmt.Sprintf("%.2f", row.StalenessPush))
	}
	return t
}

// WriteTo prints the table.
func (r *PropagationResult) WriteTo(w io.Writer) (int64, error) { return r.Table().WriteTo(w) }

// CheckShape verifies the ablation's claims: push-based readers are always
// perfectly fresh; push-based cost grows with the write rate while
// pull-based cost stays (nearly) flat; and the cost ordering crosses over
// somewhere in the sweep (push cheaper at the low-write end, pull cheaper
// at the high-write end).
func (r *PropagationResult) CheckShape() error {
	for _, row := range r.Rows {
		if row.StalenessPush != 0 {
			return fmt.Errorf("propagation: push-based staleness should be 0, got %.2f at w=%d",
				row.StalenessPush, row.Writes)
		}
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.MessagesPush <= first.MessagesPush {
		return fmt.Errorf("propagation: push cost should grow with writes (%d -> %d)",
			first.MessagesPush, last.MessagesPush)
	}
	if first.MessagesPush >= first.MessagesPull {
		return fmt.Errorf("propagation: with rare writes push (%d) should beat pull (%d)",
			first.MessagesPush, first.MessagesPull)
	}
	if last.MessagesPush <= last.MessagesPull {
		return fmt.Errorf("propagation: with frequent writes pull (%d) should beat push (%d)",
			last.MessagesPull, last.MessagesPush)
	}
	return nil
}
