package experiments

import (
	"strings"
	"testing"
)

func TestPropagationSweep(t *testing.T) {
	cfg := PropagationConfig{
		Readers:        4,
		ReadsPerReader: 8,
		WriteSweep:     []int{1, 8, 24},
	}
	res, err := RunPropagation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
	out := res.Table().String()
	if !strings.Contains(out, "pull-msgs") || !strings.Contains(out, "push-msgs") {
		t.Fatalf("table = %q", out)
	}
}

func TestPropagationDefault(t *testing.T) {
	res, err := RunPropagation(DefaultPropagation())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
}

func TestPropagationValidation(t *testing.T) {
	if _, err := RunPropagation(PropagationConfig{}); err == nil {
		t.Fatal("zero config should fail")
	}
}

func TestPropagationDeterministic(t *testing.T) {
	cfg := PropagationConfig{Readers: 3, ReadsPerReader: 4, WriteSweep: []int{2}}
	a, _ := RunPropagation(cfg)
	b, _ := RunPropagation(cfg)
	if a.Rows[0] != b.Rows[0] {
		t.Fatalf("non-deterministic: %+v vs %+v", a.Rows[0], b.Rows[0])
	}
}
