package experiments

import (
	"fmt"
	"io"

	"flecc/internal/metrics"
)

// Fig4Config parameterizes the efficiency experiment (paper Figure 4):
// "The experiment executes 100 travel agent components deployed into a LAN
// and connected to a main database running in the same LAN. All travel
// agents execute the same sequence of operations: (1) create the cache
// manager, (2) set the mode of operation to weak, (3) initialize the data,
// (4) reserve tickets for a flight, (5) kill the cache manager. ... The
// number of travel agents that serve similar flights is initially 10, and
// increases in increments of 10 up to 100. The consistency requirements of
// every travel agent is to always execute on the most current data."
type Fig4Config struct {
	// Agents is the total number of travel agents (paper: 100).
	Agents int
	// Groups lists the conflict-group sizes to sweep (paper: 10..100 by 10).
	Groups []int
	// OpsPerAgent is the number of reserve operations each agent performs.
	OpsPerAgent int
	// Latency is the LAN latency (affects time, not message counts).
	Latency int
}

// DefaultFig4 returns the paper's parameters.
func DefaultFig4() Fig4Config {
	groups := make([]int, 0, 10)
	for g := 10; g <= 100; g += 10 {
		groups = append(groups, g)
	}
	return Fig4Config{Agents: 100, Groups: groups, OpsPerAgent: 1, Latency: 1}
}

// Fig4Row is one swept point: the total CM↔DM message count per protocol
// for a given conflict-group size.
type Fig4Row struct {
	GroupSize   int
	Flecc       int64
	TimeSharing int64
	Multicast   int64
}

// Fig4Result is the full sweep.
type Fig4Result struct {
	Config Fig4Config
	Rows   []Fig4Row
}

// RunFig4 executes the sweep. For each group size g it deploys
// cfg.Agents agents partitioned into conflict groups of g, runs the
// paper's agent sequence under each of the three protocols, and records
// the number of messages between the cache managers and the directory
// manager.
func RunFig4(cfg Fig4Config) (*Fig4Result, error) {
	res := &Fig4Result{Config: cfg}
	for _, g := range cfg.Groups {
		row := Fig4Row{GroupSize: g}
		for _, proto := range []Protocol{ProtoFlecc, ProtoTimeSharing, ProtoMulticast} {
			count, err := runFig4Once(cfg, g, proto)
			if err != nil {
				return nil, fmt.Errorf("fig4 g=%d proto=%s: %w", g, proto, err)
			}
			switch proto {
			case ProtoFlecc:
				row.Flecc = count
			case ProtoTimeSharing:
				row.TimeSharing = count
			case ProtoMulticast:
				row.Multicast = count
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runFig4Once(cfg Fig4Config, groupSize int, proto Protocol) (int64, error) {
	dcfg := DeployConfig{
		Protocol:  proto,
		Agents:    cfg.Agents,
		GroupSize: groupSize,
		Latency:   0, // message counts are latency-independent
	}
	// "Always execute on the most current data": under Flecc this is a
	// validity trigger that never accepts the primary copy as good
	// enough, forcing a gather from the conflicting active agents. The
	// multicast baseline gathers from everyone by construction; the
	// time-sharing baseline needs no gathering (serial execution).
	if proto == ProtoFlecc {
		dcfg.Validity = "false"
	}
	d, err := NewDeployment(dcfg)
	if err != nil {
		return 0, err
	}
	defer d.Close()

	// Registration + init are part of the agent sequence; the paper
	// measures the whole run, so we do not reset the counter here.
	for op := 0; op < cfg.OpsPerAgent; op++ {
		for i, a := range d.Agents {
			if proto == ProtoTimeSharing {
				if err := a.CM.Acquire(); err != nil {
					return 0, err
				}
			}
			if err := a.ReserveTickets(1, d.FirstFlightOf(i)); err != nil {
				return 0, err
			}
			if proto == ProtoTimeSharing {
				// The turn's updates must be committed before the token
				// moves on.
				if err := a.CM.PushImage(); err != nil {
					return 0, err
				}
				if err := a.CM.Release(); err != nil {
					return 0, err
				}
			}
		}
	}
	for _, a := range d.Agents {
		if err := a.Close(); err != nil {
			return 0, err
		}
	}
	d.Agents = nil
	return d.Stats.Total(), nil
}

// Table renders the result in the paper's rows/series layout.
func (r *Fig4Result) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Figure 4 — messages between cache managers and directory manager (%d agents, %d op/agent)",
			r.Config.Agents, r.Config.OpsPerAgent),
		"conflict-group", "flecc", "time-sharing", "multicast")
	for _, row := range r.Rows {
		t.AddRowf("", row.GroupSize, row.Flecc, row.TimeSharing, row.Multicast)
	}
	return t
}

// WriteTo prints the table.
func (r *Fig4Result) WriteTo(w io.Writer) (int64, error) { return r.Table().WriteTo(w) }

// CheckShape verifies the qualitative claims of the paper's Figure 4:
// time-sharing is flat and minimal; multicast is flat and maximal; Flecc
// grows with the conflict-group size, staying between the two and
// approaching multicast as the group covers all agents. It returns nil
// when the shape holds.
func (r *Fig4Result) CheckShape() error {
	if len(r.Rows) < 2 {
		return fmt.Errorf("fig4: need at least two group sizes")
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	for _, row := range r.Rows {
		if !(row.TimeSharing <= row.Flecc && row.Flecc <= row.Multicast) {
			return fmt.Errorf("fig4: ordering violated at g=%d: ts=%d flecc=%d mc=%d",
				row.GroupSize, row.TimeSharing, row.Flecc, row.Multicast)
		}
	}
	if last.Flecc <= first.Flecc {
		return fmt.Errorf("fig4: flecc should grow with conflict-group size (%d -> %d)", first.Flecc, last.Flecc)
	}
	if last.Multicast != first.Multicast {
		return fmt.Errorf("fig4: multicast should be flat (%d -> %d)", first.Multicast, last.Multicast)
	}
	if last.TimeSharing != first.TimeSharing {
		return fmt.Errorf("fig4: time-sharing should be flat (%d -> %d)", first.TimeSharing, last.TimeSharing)
	}
	// At full conflict Flecc pays the same gather cost as multicast.
	if last.GroupSize == r.Config.Agents && last.Flecc != last.Multicast {
		return fmt.Errorf("fig4: at g=N flecc (%d) should match multicast (%d)", last.Flecc, last.Multicast)
	}
	return nil
}
