// Package experiments contains the harnesses that regenerate every figure
// in the paper's evaluation (§5.2) plus the ablations called out in
// DESIGN.md. Each experiment builds a deterministic simulated deployment
// (simulated clock + simulated LAN), drives the workload, and returns the
// same rows/series the paper reports:
//
//   - Figure 4 (efficiency): messages between cache managers and the
//     directory manager, Flecc vs time-sharing vs multicast, as the
//     number of conflicting travel agents grows;
//   - Figure 5 (adaptability): per-operation execution time and data
//     quality across a WEAK → STRONG → WEAK mode timeline;
//   - Figure 6 (flexibility): data quality and message counts with and
//     without a time-based pull trigger.
package experiments

import (
	"fmt"

	"flecc/internal/airline"
	"flecc/internal/baseline"
	"flecc/internal/directory"
	"flecc/internal/metrics"
	"flecc/internal/netsim"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// Protocol selects the coherence protocol under test.
type Protocol string

const (
	// ProtoFlecc is the paper's protocol: synchronize interested parties
	// only, as computed from data properties.
	ProtoFlecc Protocol = "flecc"
	// ProtoTimeSharing serializes agents with a token.
	ProtoTimeSharing Protocol = "time-sharing"
	// ProtoMulticast asks every cache manager for updates.
	ProtoMulticast Protocol = "multicast"
)

// Deployment is one simulated airline deployment: a main database with a
// directory manager on a hub host, plus travel agents on edge hosts.
type Deployment struct {
	Clock  *vclock.Sim
	Net    *netsim.Net
	Stats  *metrics.MessageStats
	DB     *airline.ReservationSystem
	DM     *directory.Manager
	TS     *baseline.TimeSharing // non-nil for ProtoTimeSharing
	Agents []*airline.TravelAgent
	// Proto records which protocol the deployment runs.
	Proto Protocol
}

// DeployConfig describes the deployment to build.
type DeployConfig struct {
	// Protocol selects the DM variant.
	Protocol Protocol
	// Agents is the number of travel agents.
	Agents int
	// GroupSize is the number of agents serving the same flights; agents
	// are partitioned into ceil(Agents/GroupSize) disjoint flight ranges.
	// Agents within a group conflict; agents across groups do not.
	GroupSize int
	// FlightsPerGroup is the width of each group's flight range.
	FlightsPerGroup int
	// Latency is the LAN link latency (one way) in virtual ms.
	Latency vclock.Duration
	// Mode is the agents' initial consistency mode.
	Mode wire.Mode
	// PushTrigger, PullTrigger, Validity are the agents' quality-trigger
	// sources.
	PushTrigger, PullTrigger, Validity string
	// PropagateOnPush switches the Flecc DM to push-based update
	// distribution (the E10 ablation).
	PropagateOnPush bool
}

// agentName renders the i-th agent's node name.
func agentName(i int) string { return fmt.Sprintf("agent-%03d", i) }

// NewDeployment builds the simulated deployment: a database with one
// flight range per agent group, the protocol's directory manager on host
// "hub", and each agent on its own edge host.
func NewDeployment(cfg DeployConfig) (*Deployment, error) {
	if cfg.Agents <= 0 || cfg.GroupSize <= 0 {
		return nil, fmt.Errorf("experiments: need positive Agents and GroupSize")
	}
	if cfg.FlightsPerGroup <= 0 {
		cfg.FlightsPerGroup = 10
	}
	d := &Deployment{
		Clock: vclock.NewSim(),
		DB:    airline.NewReservationSystem(),
		Stats: metrics.NewMessageStats(false),
		Proto: cfg.Protocol,
	}
	topo := netsim.LAN(cfg.Latency)
	topo.Place("db", "hub")
	d.Net = netsim.New(d.Clock, topo)
	d.Net.SetObserver(d.Stats)

	groups := (cfg.Agents + cfg.GroupSize - 1) / cfg.GroupSize
	airline.SeedFlights(d.DB, 100, groups*cfg.FlightsPerGroup, 1<<30)

	var err error
	switch cfg.Protocol {
	case ProtoTimeSharing:
		d.TS, err = baseline.NewTimeSharing("db", d.DB, d.Clock, d.Net)
		if d.TS != nil {
			d.DM = d.TS.Manager
		}
	case ProtoMulticast:
		d.DM, err = baseline.NewMulticast("db", d.DB, d.Clock, d.Net)
	case ProtoFlecc, "":
		d.DM, err = directory.New("db", d.DB, d.Clock, d.Net, directory.Options{
			Resolver:        airline.SeatResolver,
			PropagateOnPush: cfg.PropagateOnPush,
			// The netsim latency model charges the virtual clock serially;
			// FanOut=1 keeps DM-initiated rounds in deterministic order so
			// figure outputs stay exactly reproducible.
			FanOut: 1,
		})
	default:
		return nil, fmt.Errorf("experiments: unknown protocol %q", cfg.Protocol)
	}
	if err != nil {
		return nil, err
	}

	for i := 0; i < cfg.Agents; i++ {
		group := i / cfg.GroupSize
		from := 100 + group*cfg.FlightsPerGroup
		host := fmt.Sprintf("edge-%03d", i)
		d.Net.Topology().Place(agentName(i), host)
		agent, err := airline.NewTravelAgent(airline.AgentConfig{
			Name:            agentName(i),
			Directory:       "db",
			Net:             d.Net,
			Clock:           d.Clock,
			FlightsFrom:     from,
			FlightsTo:       from + cfg.FlightsPerGroup - 1,
			Mode:            cfg.Mode,
			PushTrigger:     cfg.PushTrigger,
			PullTrigger:     cfg.PullTrigger,
			ValidityTrigger: cfg.Validity,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: agent %d: %w", i, err)
		}
		d.Agents = append(d.Agents, agent)
	}
	return d, nil
}

// Close kills all agents.
func (d *Deployment) Close() {
	for _, a := range d.Agents {
		_ = a.Close()
	}
}

// FirstFlightOf returns the first flight number served by agent i.
func (d *Deployment) FirstFlightOf(i int) int {
	f := d.Agents[i].ARS.Flights()
	return f[0].Number
}

// Quality returns the paper's data-quality metric for agent i at this
// instant: the number of remote updates to the agent's shared data it has
// not seen — committed updates the DM logged after the agent's last sync,
// plus the peers' locally pending (unpushed) operations on overlapping
// data.
func (d *Deployment) Quality(i int) int {
	me := d.Agents[i]
	unseen := d.DM.UnseenCommitted(me.Name())
	for j, peer := range d.Agents {
		if j == i {
			continue
		}
		if d.conflicts(i, j) {
			unseen += peer.CM.PendingOps()
		}
	}
	return unseen
}

// conflicts reports whether agents i and j share flights (they are in the
// same group).
func (d *Deployment) conflicts(i, j int) bool {
	return d.DM.Registry().Conflicts(agentName(i), agentName(j))
}
