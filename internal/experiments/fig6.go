package experiments

import (
	"fmt"
	"io"

	"flecc/internal/metrics"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// Fig6Config parameterizes the flexibility experiment (paper Figure 6):
// "running ten conflicting travel agents in weak mode, with and without
// triggers. We measure the quality of the data and the number of messages
// generated between the cache managers and the directory managers. ...
// The upper graph represents a travel agent which explicitly pulls the
// current data before executing four methods. The lower plot represents
// the same travel agent that uses a time-based pull trigger in addition to
// explicit calls. However, the cost of the improved data quality is an
// increased number of messages (116 — no triggers versus 182 — with
// triggers)."
type Fig6Config struct {
	// Agents is the number of conflicting agents (paper: 10).
	Agents int
	// Ops is the number of method executions by the observed agent.
	Ops int
	// ExplicitPullEvery: the observed agent explicitly pulls before every
	// k-th method (paper: 4 explicit pulls across the run).
	ExplicitPullEvery int
	// TriggerPeriod is the time-based pull trigger period in virtual ms
	// for the with-triggers variant (the paper's "(t > 1500)"-style
	// trigger, realized as every(period)).
	TriggerPeriod vclock.Duration
	// TickEvery is the trigger evaluation period.
	TickEvery vclock.Duration
	// OpSpacing is the virtual time between consecutive method
	// executions (drives the trigger timeline).
	OpSpacing vclock.Duration
}

// DefaultFig6 returns the paper-equivalent setting. The trigger period is
// deliberately not a multiple of the explicit-pull spacing (500ms of
// virtual time = 5 ops), so the trigger adds pulls *between* the explicit
// ones rather than coinciding with them.
func DefaultFig6() Fig6Config {
	return Fig6Config{
		Agents:            10,
		Ops:               20,
		ExplicitPullEvery: 5,
		TriggerPeriod:     300,
		TickEvery:         100,
		OpSpacing:         100,
	}
}

// Fig6Point is one method execution of the observed agent.
type Fig6Point struct {
	T       vclock.Time
	Quality int
	// Pulled marks operations preceded by an explicit pull.
	Pulled bool
}

// Fig6Variant is one run (with or without the pull trigger).
type Fig6Variant struct {
	Name     string
	Points   []Fig6Point
	Messages int64
}

// MeanQuality returns the variant's average data quality.
func (v *Fig6Variant) MeanQuality() float64 {
	if len(v.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range v.Points {
		sum += float64(p.Quality)
	}
	return sum / float64(len(v.Points))
}

// Fig6Result holds both variants.
type Fig6Result struct {
	Config      Fig6Config
	NoTriggers  Fig6Variant
	WithTrigger Fig6Variant
}

// RunFig6 executes both variants with identical workloads and timelines.
func RunFig6(cfg Fig6Config) (*Fig6Result, error) {
	if cfg.Agents <= 0 || cfg.Ops <= 0 {
		return nil, fmt.Errorf("fig6: need positive Agents and Ops")
	}
	res := &Fig6Result{Config: cfg}
	for _, withTrigger := range []bool{false, true} {
		v, err := runFig6Variant(cfg, withTrigger)
		if err != nil {
			return nil, err
		}
		if withTrigger {
			res.WithTrigger = *v
		} else {
			res.NoTriggers = *v
		}
	}
	return res, nil
}

func runFig6Variant(cfg Fig6Config, withTrigger bool) (*Fig6Variant, error) {
	dcfg := DeployConfig{
		Protocol:  ProtoFlecc,
		Agents:    cfg.Agents,
		GroupSize: cfg.Agents,
		Latency:   0, // message counting; time advances via OpSpacing
		Mode:      wire.Weak,
	}
	name := "no-triggers"
	if withTrigger {
		name = "with-pull-trigger"
		dcfg.PullTrigger = fmt.Sprintf("every(%d)", int64(cfg.TriggerPeriod))
	}
	d, err := NewDeployment(dcfg)
	if err != nil {
		return nil, err
	}
	defer d.Close()

	me := d.Agents[0]
	if withTrigger {
		if !me.CM.ScheduleTriggers(cfg.TickEvery) {
			return nil, fmt.Errorf("fig6: trigger scheduler did not start")
		}
	}
	flight := d.FirstFlightOf(0)
	v := &Fig6Variant{Name: name}
	d.Stats.Reset()

	for op := 0; op < cfg.Ops; op++ {
		// Advance the timeline, firing any scheduled trigger evaluations.
		d.Clock.RunUntil(d.Clock.Now() + cfg.OpSpacing)

		// Peers work and publish; their pushes are what the observed
		// agent fails to see while it does not pull.
		for _, peer := range d.Agents[1:] {
			if err := peer.CM.StartUse(); err != nil {
				return nil, err
			}
			if err := peer.ARS.ConfirmTickets(1, flight); err != nil {
				return nil, err
			}
			peer.CM.EndUse()
			if err := peer.CM.PushImage(); err != nil {
				return nil, err
			}
		}

		pulled := cfg.ExplicitPullEvery > 0 && op%cfg.ExplicitPullEvery == cfg.ExplicitPullEvery-1
		if pulled {
			if err := me.CM.PullImage(); err != nil {
				return nil, err
			}
		}
		quality := d.Quality(0)
		if err := me.CM.StartUse(); err != nil {
			return nil, err
		}
		if err := me.ARS.ConfirmTickets(1, flight); err != nil {
			return nil, err
		}
		me.CM.EndUse()
		v.Points = append(v.Points, Fig6Point{T: d.Clock.Now(), Quality: quality, Pulled: pulled})
	}
	me.CM.StopTriggers()
	v.Messages = d.Stats.Total()
	return v, nil
}

// Table renders the per-call quality series for both variants side by
// side.
func (r *Fig6Result) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Figure 6 — remote unseen updates per method call (%d agents, weak mode)", r.Config.Agents),
		"call", "no-triggers", "with-trigger")
	n := len(r.NoTriggers.Points)
	if len(r.WithTrigger.Points) > n {
		n = len(r.WithTrigger.Points)
	}
	for i := 0; i < n; i++ {
		var a, b string
		if i < len(r.NoTriggers.Points) {
			a = fmt.Sprint(r.NoTriggers.Points[i].Quality)
			if r.NoTriggers.Points[i].Pulled {
				a += "*"
			}
		}
		if i < len(r.WithTrigger.Points) {
			b = fmt.Sprint(r.WithTrigger.Points[i].Quality)
			if r.WithTrigger.Points[i].Pulled {
				b += "*"
			}
		}
		t.AddRowf("", i, a, b)
	}
	return t
}

// SummaryTable renders the headline comparison (the paper's "116 vs 182").
func (r *Fig6Result) SummaryTable() *metrics.Table {
	t := metrics.NewTable("Figure 6 — summary (quality improved, messages increased)",
		"variant", "messages", "mean-quality")
	t.AddRowf("", r.NoTriggers.Name, r.NoTriggers.Messages, fmt.Sprintf("%.2f", r.NoTriggers.MeanQuality()))
	t.AddRowf("", r.WithTrigger.Name, r.WithTrigger.Messages, fmt.Sprintf("%.2f", r.WithTrigger.MeanQuality()))
	return t
}

// WriteTo prints both tables.
func (r *Fig6Result) WriteTo(w io.Writer) (int64, error) {
	n1, err := r.SummaryTable().WriteTo(w)
	if err != nil {
		return n1, err
	}
	n2, err := r.Table().WriteTo(w)
	return n1 + n2, err
}

// CheckShape verifies the paper's claims: the trigger variant uses more
// messages and achieves strictly better (lower) average staleness.
func (r *Fig6Result) CheckShape() error {
	if r.WithTrigger.Messages <= r.NoTriggers.Messages {
		return fmt.Errorf("fig6: triggers should cost messages (%d vs %d)",
			r.WithTrigger.Messages, r.NoTriggers.Messages)
	}
	if r.WithTrigger.MeanQuality() >= r.NoTriggers.MeanQuality() {
		return fmt.Errorf("fig6: triggers should improve quality (%.2f vs %.2f unseen updates)",
			r.WithTrigger.MeanQuality(), r.NoTriggers.MeanQuality())
	}
	return nil
}
