package experiments

import (
	"fmt"
	"io"

	"flecc/internal/airline"
	"flecc/internal/directory"
	"flecc/internal/metrics"
	"flecc/internal/peer"
	"flecc/internal/registry"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// --- Ablation E5: how the conflict decision is made -----------------------

// ConflictPolicy selects how the directory manager decides which views
// share data.
type ConflictPolicy string

const (
	// PolicyWorstCase assumes every pair of views conflicts — the
	// "without additional application-specific information" baseline from
	// §4.1 ("all views conflict and the updates should be sent to all
	// views").
	PolicyWorstCase ConflictPolicy = "worst-case"
	// PolicyStaticMap pre-fills the static matrix with exact 1/0 entries
	// (the relationships are known before deployment).
	PolicyStaticMap ConflictPolicy = "static-map"
	// PolicyDynamic leaves every entry at -1 and evaluates dynConfl over
	// the live property sets (the fully dynamic case).
	PolicyDynamic ConflictPolicy = "dynamic"
)

// AblationConflictRow is one policy's measured traffic.
type AblationConflictRow struct {
	Policy   ConflictPolicy
	Messages int64
}

// AblationConflictResult compares the three conflict-decision policies on
// the same workload.
type AblationConflictResult struct {
	Agents, GroupSize int
	Rows              []AblationConflictRow
}

// RunAblationConflict runs the Figure-4 workload under each conflict
// policy. Static and dynamic must produce identical traffic (they compute
// the same relation); worst-case must cost strictly more — that surplus is
// exactly what the paper's data properties buy.
func RunAblationConflict(agents, groupSize, ops int) (*AblationConflictResult, error) {
	res := &AblationConflictResult{Agents: agents, GroupSize: groupSize}
	for _, pol := range []ConflictPolicy{PolicyWorstCase, PolicyStaticMap, PolicyDynamic} {
		d, err := NewDeployment(DeployConfig{
			Protocol:  ProtoFlecc,
			Agents:    agents,
			GroupSize: groupSize,
			Validity:  "false", // always freshest (the Fig. 4 requirement)
		})
		if err != nil {
			return nil, err
		}
		switch pol {
		case PolicyWorstCase:
			d.DM.Registry().SetDefaultRelation(registry.Conflict)
		case PolicyStaticMap:
			for i := 0; i < agents; i++ {
				for j := i + 1; j < agents; j++ {
					rel := registry.NoConflict
					if i/groupSize == j/groupSize {
						rel = registry.Conflict
					}
					d.DM.Registry().SetStatic(agentName(i), agentName(j), rel)
				}
			}
		case PolicyDynamic:
			// default: everything -1
		}
		d.Stats.Reset()
		for op := 0; op < ops; op++ {
			for i, a := range d.Agents {
				if err := a.ReserveTickets(1, d.FirstFlightOf(i)); err != nil {
					d.Close()
					return nil, err
				}
			}
		}
		res.Rows = append(res.Rows, AblationConflictRow{Policy: pol, Messages: d.Stats.Total()})
		d.Close()
	}
	return res, nil
}

// Table renders the comparison.
func (r *AblationConflictResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Ablation E5 — conflict decision policy (%d agents, groups of %d)", r.Agents, r.GroupSize),
		"policy", "messages")
	for _, row := range r.Rows {
		t.AddRowf("", string(row.Policy), row.Messages)
	}
	return t
}

// CheckShape verifies: static == dynamic, worst-case > both (unless the
// whole deployment is one conflict group, where they coincide).
func (r *AblationConflictResult) CheckShape() error {
	var worst, static, dynamic int64
	for _, row := range r.Rows {
		switch row.Policy {
		case PolicyWorstCase:
			worst = row.Messages
		case PolicyStaticMap:
			static = row.Messages
		case PolicyDynamic:
			dynamic = row.Messages
		}
	}
	if static != dynamic {
		return fmt.Errorf("ablation-conflict: static (%d) and dynamic (%d) should agree", static, dynamic)
	}
	if r.GroupSize < r.Agents && worst <= dynamic {
		return fmt.Errorf("ablation-conflict: worst-case (%d) should exceed property-based (%d)", worst, dynamic)
	}
	return nil
}

// --- Ablation E6: read/write semantics (paper §6 future work) -------------

// AblationRWResult compares strong-mode browsing traffic with and without
// the read/write-semantics extension.
type AblationRWResult struct {
	Agents, Ops                           int
	MessagesBase, MessagesAware           int64
	InvalidationsBase, InvalidationsAware int
}

// RunAblationRW deploys strong-mode agents that only browse (read-only
// pulls). The base protocol invalidates the previous reader on every
// pull; the read-aware extension lets readers coexist, eliminating the
// invalidation traffic — the reduction the paper's future work predicts
// from "attaching read/write semantics to the shared data".
func RunAblationRW(agents, ops int) (*AblationRWResult, error) {
	res := &AblationRWResult{Agents: agents, Ops: ops}
	for _, aware := range []bool{false, true} {
		clock := vclock.NewSim()
		net := transport.NewInproc()
		stats := metrics.NewMessageStats(false)
		net.SetObserver(stats)
		db := airline.NewReservationSystem()
		airline.SeedFlights(db, 100, 10, 100)
		// FanOut=1: deterministic serial rounds for reproducible outputs.
		_, err := directory.New("db", db, clock, net, directory.Options{ReadAware: aware, FanOut: 1})
		if err != nil {
			return nil, err
		}
		ags := make([]*airline.TravelAgent, agents)
		for i := range ags {
			a, err := airline.NewTravelAgent(airline.AgentConfig{
				Name: agentName(i), Directory: "db", Net: net, Clock: clock,
				FlightsFrom: 100, FlightsTo: 109, Mode: wire.Strong,
				ReadOnly: true,
			})
			if err != nil {
				return nil, err
			}
			ags[i] = a
		}
		stats.Reset()
		invalidations := 0
		for op := 0; op < ops; op++ {
			for _, a := range ags {
				if _, err := a.Browse("", ""); err != nil {
					return nil, err
				}
			}
		}
		for _, a := range ags {
			invalidations += a.CM.Invalidations()
			a.Close()
		}
		if aware {
			res.MessagesAware = stats.Total()
			res.InvalidationsAware = invalidations
		} else {
			res.MessagesBase = stats.Total()
			res.InvalidationsBase = invalidations
		}
	}
	return res, nil
}

// Table renders the comparison.
func (r *AblationRWResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Ablation E6 — read/write semantics, strong-mode browsing (%d agents, %d ops)", r.Agents, r.Ops),
		"variant", "messages", "invalidations")
	t.AddRowf("", "base (writes assumed)", r.MessagesBase, r.InvalidationsBase)
	t.AddRowf("", "read-aware", r.MessagesAware, r.InvalidationsAware)
	return t
}

// CheckShape verifies the extension removes reader/reader invalidations.
func (r *AblationRWResult) CheckShape() error {
	if r.InvalidationsAware != 0 {
		return fmt.Errorf("ablation-rw: read-aware browsing should never invalidate (got %d)", r.InvalidationsAware)
	}
	if r.Agents > 1 && r.InvalidationsBase == 0 {
		return fmt.Errorf("ablation-rw: base protocol should invalidate readers")
	}
	if r.MessagesAware >= r.MessagesBase {
		return fmt.Errorf("ablation-rw: read-aware (%d) should use fewer messages than base (%d)",
			r.MessagesAware, r.MessagesBase)
	}
	return nil
}

// --- Ablation E7: centralized vs decentralized (paper §4.1 / §6) ----------

// AblationPeerRow is one system size.
type AblationPeerRow struct {
	N                               int
	PairingsCentralized             int
	PairingsDecentralized           int
	SyncMessagesPerAntiEntropyRound int64
}

// AblationPeerResult quantifies the O(n) vs O(n²) argument.
type AblationPeerResult struct {
	Rows []AblationPeerRow
}

// RunAblationPeer builds n decentralized peers, runs one full
// all-pairs anti-entropy round, and reports the measured message count
// alongside the pairing formulas from §4.1.
func RunAblationPeer(sizes []int) (*AblationPeerResult, error) {
	res := &AblationPeerResult{}
	for _, n := range sizes {
		net := transport.NewInproc()
		stats := metrics.NewMessageStats(false)
		net.SetObserver(stats)
		peers := make([]*peer.Peer, n)
		for i := range peers {
			rs := airline.NewReservationSystem()
			airline.SeedFlights(rs, 100, 2, 10)
			p, err := peer.New(fmt.Sprintf("peer-%02d", i), rs, net, airline.SeatResolver)
			if err != nil {
				return nil, err
			}
			peers[i] = p
		}
		stats.Reset()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if err := peers[i].Sync(fmt.Sprintf("peer-%02d", j)); err != nil {
					return nil, err
				}
			}
		}
		res.Rows = append(res.Rows, AblationPeerRow{
			N:                               n,
			PairingsCentralized:             peer.PairingsCentralized(n),
			PairingsDecentralized:           peer.PairingsDecentralized(n),
			SyncMessagesPerAntiEntropyRound: stats.Total(),
		})
		for _, p := range peers {
			p.Close()
		}
	}
	return res, nil
}

// Table renders the comparison.
func (r *AblationPeerResult) Table() *metrics.Table {
	t := metrics.NewTable("Ablation E7 — centralized O(n) vs decentralized O(n²) (paper §4.1)",
		"n", "pairings-centralized", "pairings-decentralized", "anti-entropy-msgs/round")
	for _, row := range r.Rows {
		t.AddRowf("", row.N, row.PairingsCentralized, row.PairingsDecentralized, row.SyncMessagesPerAntiEntropyRound)
	}
	return t
}

// CheckShape verifies quadratic growth of the decentralized costs.
func (r *AblationPeerResult) CheckShape() error {
	for _, row := range r.Rows {
		if row.SyncMessagesPerAntiEntropyRound != int64(2*row.PairingsDecentralized) {
			return fmt.Errorf("ablation-peer: n=%d expected %d messages, got %d",
				row.N, 2*row.PairingsDecentralized, row.SyncMessagesPerAntiEntropyRound)
		}
	}
	return nil
}

// WriteAll runs every ablation with default sizes and prints the tables.
func WriteAll(w io.Writer) error {
	c, err := RunAblationConflict(20, 5, 1)
	if err != nil {
		return err
	}
	if _, err := c.Table().WriteTo(w); err != nil {
		return err
	}
	rw, err := RunAblationRW(5, 4)
	if err != nil {
		return err
	}
	if _, err := rw.Table().WriteTo(w); err != nil {
		return err
	}
	p, err := RunAblationPeer([]int{2, 4, 8, 16})
	if err != nil {
		return err
	}
	_, err = p.Table().WriteTo(w)
	return err
}
