package experiments

import (
	"fmt"
	"io"

	"flecc/internal/metrics"
	"flecc/internal/vclock"
	"flecc/internal/wire"
	"flecc/internal/workload"
)

// --- Experiment E9: buyer-mix sweep ----------------------------------------
//
// The paper's introduction motivates Flecc with clients that browse (weak)
// and occasionally buy (strong): "users accept stale data during browsing
// (weak consistency), but require most current data when buying tickets
// (strong consistency)". This experiment quantifies why *both* fixed
// policies are wrong and per-client mode switching is the sweet spot:
//
//   - all-strong: correct, but every browse pays invalidation round trips
//     (high browse latency and message cost);
//   - all-weak (with lazy publication): cheap, but concurrent buyers sell
//     from stale replicas and oversell seats;
//   - adaptive (Flecc): browses run weak and cheap, purchases upgrade to
//     strong and never oversell.
//
// Purchases are pushed immediately in the strong configurations (a sale
// must be visible); the all-weak configuration publishes lazily — that lag
// is exactly what weak consistency means, and what makes it oversell.

// BuyerMixRow is one swept point.
type BuyerMixRow struct {
	// BuyFraction is the share of sessions that end in a purchase.
	BuyFraction float64
	// Buys is the number of purchase attempts in the stream.
	Buys int
	// Messages per configuration.
	MessagesAdaptive, MessagesAllStrong, MessagesAllWeak int64
	// BrowseTime is the total simulated time spent in browse operations
	// per configuration (latency 1 ms per hop).
	BrowseTimeAdaptive, BrowseTimeAllStrong vclock.Duration
	// Oversold counts seats sold to clients beyond flight capacity, per
	// configuration (only all-weak should ever be non-zero).
	OversoldAdaptive, OversoldAllStrong, OversoldAllWeak int
}

// BuyerMixResult is the sweep outcome.
type BuyerMixResult struct {
	Agents int
	Rows   []BuyerMixRow
}

// BuyerMixConfig parameterizes the sweep.
type BuyerMixConfig struct {
	// Clients is the number of concurrent clients (each with its own
	// travel agent view).
	Clients int
	// Sessions per client.
	Sessions int
	// Fractions to sweep.
	Fractions []float64
	// Capacity is the per-flight seat count; small values make weak-mode
	// overselling observable.
	Capacity int
	// Seed for the workload generator.
	Seed int64
}

// DefaultBuyerMix returns a laptop-scale default.
func DefaultBuyerMix() BuyerMixConfig {
	return BuyerMixConfig{
		Clients:   8,
		Sessions:  6,
		Fractions: []float64{0, 0.25, 0.5, 0.75, 1},
		Capacity:  3,
		Seed:      42,
	}
}

type buyerMixMode uint8

const (
	mixAdaptive buyerMixMode = iota
	mixAllStrong
	mixAllWeak
)

// RunBuyerMix executes the sweep.
func RunBuyerMix(cfg BuyerMixConfig) (*BuyerMixResult, error) {
	if cfg.Clients <= 0 || cfg.Sessions <= 0 || len(cfg.Fractions) == 0 {
		return nil, fmt.Errorf("buyermix: need positive Clients/Sessions and at least one fraction")
	}
	res := &BuyerMixResult{Agents: cfg.Clients}
	for _, frac := range cfg.Fractions {
		ops, err := workload.Generate(workload.Config{
			Seed:              cfg.Seed,
			Clients:           cfg.Clients,
			Sessions:          cfg.Sessions,
			BrowsesPerSession: 2,
			BuyFraction:       frac,
			FlightsFrom:       100,
			FlightsTo:         104,
			MaxSeats:          1,
		})
		if err != nil {
			return nil, err
		}
		row := BuyerMixRow{BuyFraction: frac, Buys: workload.Summarize(ops).Buys}
		for _, mode := range []buyerMixMode{mixAdaptive, mixAllStrong, mixAllWeak} {
			out, err := runBuyerMixOnce(cfg, ops, mode)
			if err != nil {
				return nil, fmt.Errorf("buyermix frac=%g mode=%d: %w", frac, mode, err)
			}
			switch mode {
			case mixAdaptive:
				row.MessagesAdaptive = out.msgs
				row.BrowseTimeAdaptive = out.browseTime
				row.OversoldAdaptive = out.oversold
			case mixAllStrong:
				row.MessagesAllStrong = out.msgs
				row.BrowseTimeAllStrong = out.browseTime
				row.OversoldAllStrong = out.oversold
			case mixAllWeak:
				row.MessagesAllWeak = out.msgs
				row.OversoldAllWeak = out.oversold
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

type buyerMixOut struct {
	msgs       int64
	browseTime vclock.Duration
	oversold   int
}

func runBuyerMixOnce(cfg BuyerMixConfig, ops []workload.Op, mode buyerMixMode) (buyerMixOut, error) {
	var out buyerMixOut
	initMode := wire.Weak
	if mode == mixAllStrong {
		initMode = wire.Strong
	}
	d, err := NewDeployment(DeployConfig{
		Protocol:        ProtoFlecc,
		Agents:          cfg.Clients,
		GroupSize:       cfg.Clients, // everyone shares the same flights
		FlightsPerGroup: 5,
		Latency:         1,
		Mode:            initMode,
	})
	if err != nil {
		return out, err
	}
	defer d.Close()
	// Shrink capacity so stale-replica races oversell observably, then
	// refresh every replica.
	for _, f := range d.DB.Flights() {
		f.Capacity = cfg.Capacity
		d.DB.AddFlight(f)
	}
	for _, a := range d.Agents {
		if err := a.CM.PullImage(); err != nil {
			return out, err
		}
	}
	d.Stats.Reset()

	// sold tracks seats successfully sold to clients per flight — the
	// ground truth the overselling audit compares against capacity.
	sold := map[int]int{}
	for _, op := range ops {
		a := d.Agents[op.Client]
		switch op.Kind {
		case workload.OpBrowse:
			t0 := d.Clock.Now()
			if _, err := a.Browse("", ""); err != nil {
				return out, err
			}
			out.browseTime += d.Clock.Now() - t0
		case workload.OpUpgrade:
			if mode == mixAdaptive {
				if err := a.CM.SetMode(wire.Strong); err != nil {
					return out, err
				}
			}
		case workload.OpDowngrade:
			if mode == mixAdaptive {
				if err := a.CM.SetMode(wire.Weak); err != nil {
					return out, err
				}
			}
		case workload.OpBuy:
			if err := a.ReserveTickets(op.Seats, op.Flight); err != nil {
				// Sold out is a legitimate outcome, not a failure.
				continue
			}
			sold[op.Flight] += op.Seats
			// Strong configurations publish the sale immediately; the
			// all-weak configuration publishes lazily (that lag IS weak
			// consistency).
			if mode != mixAllWeak {
				if err := a.CM.PushImage(); err != nil {
					return out, err
				}
			}
		}
	}
	// Quiesce and audit: seats promised to clients beyond capacity.
	for _, a := range d.Agents {
		if err := a.CM.PushImage(); err != nil {
			return out, err
		}
	}
	for flight, n := range sold {
		f, ok := d.DB.Flight(flight)
		if !ok {
			return out, fmt.Errorf("buyermix: flight %d vanished", flight)
		}
		if n > f.Capacity {
			out.oversold += n - f.Capacity
		}
	}
	out.msgs = d.Stats.Total()
	return out, nil
}

// Table renders the sweep.
func (r *BuyerMixResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E9 — buyer-mix sweep (%d clients): adaptive modes vs all-strong vs all-weak", r.Agents),
		"buy-frac", "buys",
		"adaptive-msgs", "strong-msgs", "weak-msgs",
		"adaptive-browse-ms", "strong-browse-ms",
		"weak-oversold")
	for _, row := range r.Rows {
		t.AddRowf("", fmt.Sprintf("%.2f", row.BuyFraction), row.Buys,
			row.MessagesAdaptive, row.MessagesAllStrong, row.MessagesAllWeak,
			int64(row.BrowseTimeAdaptive), int64(row.BrowseTimeAllStrong),
			row.OversoldAllWeak)
	}
	return t
}

// WriteTo prints the table.
func (r *BuyerMixResult) WriteTo(w io.Writer) (int64, error) { return r.Table().WriteTo(w) }

// CheckShape verifies the motivating claims:
//
//  1. browsing is cheaper adaptively: at every point the adaptive
//     configuration's browse time is below all-strong's;
//  2. adaptive and all-strong never oversell; all-weak oversells once
//     enough sessions buy;
//  3. at the pure-browsing end, adaptive messages are strictly below
//     all-strong's.
func (r *BuyerMixResult) CheckShape() error {
	sawOversell := false
	for _, row := range r.Rows {
		if row.OversoldAdaptive != 0 || row.OversoldAllStrong != 0 {
			return fmt.Errorf("buyermix: strong configurations must never oversell (frac=%.2f: %d/%d)",
				row.BuyFraction, row.OversoldAdaptive, row.OversoldAllStrong)
		}
		if row.BrowseTimeAdaptive >= row.BrowseTimeAllStrong {
			return fmt.Errorf("buyermix: adaptive browsing (%v) should beat all-strong (%v) at frac=%.2f",
				row.BrowseTimeAdaptive, row.BrowseTimeAllStrong, row.BuyFraction)
		}
		if row.OversoldAllWeak > 0 {
			sawOversell = true
		}
	}
	first := r.Rows[0]
	if first.BuyFraction == 0 && first.MessagesAdaptive >= first.MessagesAllStrong {
		return fmt.Errorf("buyermix: pure browsing should be strictly cheaper adaptively (%d vs %d)",
			first.MessagesAdaptive, first.MessagesAllStrong)
	}
	last := r.Rows[len(r.Rows)-1]
	if last.Buys > 0 && !sawOversell {
		return fmt.Errorf("buyermix: all-weak should oversell somewhere in the sweep")
	}
	return nil
}
