package experiments

import (
	"strings"
	"testing"
)

func TestAblationConflict(t *testing.T) {
	res, err := RunAblationConflict(12, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
	out := res.Table().String()
	for _, want := range []string{"worst-case", "static-map", "dynamic"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestAblationConflictFullGroup(t *testing.T) {
	// One big conflict group: worst-case and property-based coincide,
	// CheckShape must not demand a difference.
	res, err := RunAblationConflict(6, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
}

func TestAblationRW(t *testing.T) {
	res, err := RunAblationRW(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Table().String(), "read-aware") {
		t.Fatal("table rendering")
	}
}

func TestAblationPeer(t *testing.T) {
	res, err := RunAblationPeer([]int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
	// Quadratic growth: doubling n roughly quadruples messages.
	r2, r4, r8 := res.Rows[0], res.Rows[1], res.Rows[2]
	if r4.SyncMessagesPerAntiEntropyRound <= 2*r2.SyncMessagesPerAntiEntropyRound {
		t.Fatal("messages should grow super-linearly")
	}
	if r8.PairingsDecentralized != 28 || r8.PairingsCentralized != 8 {
		t.Fatalf("pairings: %+v", r8)
	}
}

func TestWriteAll(t *testing.T) {
	var sb strings.Builder
	if err := WriteAll(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Ablation E5", "Ablation E6", "Ablation E7"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("WriteAll missing %q", want)
		}
	}
}
