package experiments

import (
	"strings"
	"testing"

	"flecc/internal/wire"
)

func TestDeploymentGroups(t *testing.T) {
	d, err := NewDeployment(DeployConfig{Agents: 6, GroupSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if len(d.Agents) != 6 {
		t.Fatalf("agents = %d", len(d.Agents))
	}
	// Agents 0-2 share flights; 3-5 share a different range.
	if !d.conflicts(0, 1) || !d.conflicts(1, 2) {
		t.Fatal("group members should conflict")
	}
	if d.conflicts(0, 3) || d.conflicts(2, 5) {
		t.Fatal("members of different groups should not conflict")
	}
	if d.FirstFlightOf(0) == d.FirstFlightOf(3) {
		t.Fatal("groups should serve disjoint flights")
	}
}

func TestDeploymentValidation(t *testing.T) {
	if _, err := NewDeployment(DeployConfig{Agents: 0, GroupSize: 1}); err == nil {
		t.Fatal("zero agents should fail")
	}
	if _, err := NewDeployment(DeployConfig{Agents: 1, GroupSize: 0}); err == nil {
		t.Fatal("zero group should fail")
	}
	if _, err := NewDeployment(DeployConfig{Agents: 1, GroupSize: 1, Protocol: "bogus"}); err == nil {
		t.Fatal("bogus protocol should fail")
	}
}

func TestFig4SmallSweep(t *testing.T) {
	// Group sizes start at 6: like the paper's sweep (10..100), the
	// smallest group must be large enough that Flecc's gather cost
	// exceeds time-sharing's constant token overhead.
	cfg := Fig4Config{Agents: 12, Groups: []int{6, 12}, OpsPerAgent: 1}
	res, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
	out := res.Table().String()
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "flecc") {
		t.Fatalf("table = %q", out)
	}
}

func TestFig4Deterministic(t *testing.T) {
	cfg := Fig4Config{Agents: 8, Groups: []int{4}, OpsPerAgent: 2}
	a, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows[0] != b.Rows[0] {
		t.Fatalf("non-deterministic: %+v vs %+v", a.Rows[0], b.Rows[0])
	}
}

func TestFig5ShapeHolds(t *testing.T) {
	cfg := Fig5Config{Agents: 4, OpsPerPhase: 6, Latency: 5, PushEvery: 3}
	res, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3*cfg.OpsPerPhase {
		t.Fatalf("points = %d", len(res.Points))
	}
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
	// Strong-mode execution involves invalidation round trips.
	sums := res.Summaries()
	if sums[1].MeanExec < 2*sums[0].MeanExec {
		t.Fatalf("strong exec (%.1f) should be well above weak (%.1f)", sums[1].MeanExec, sums[0].MeanExec)
	}
	out := res.SummaryTable().String()
	if !strings.Contains(out, "STRONG") {
		t.Fatalf("summary = %q", out)
	}
}

func TestFig5Validation(t *testing.T) {
	if _, err := RunFig5(Fig5Config{}); err == nil {
		t.Fatal("zero config should fail")
	}
}

func TestFig6ShapeHolds(t *testing.T) {
	cfg := Fig6Config{
		Agents: 4, Ops: 12, ExplicitPullEvery: 6,
		TriggerPeriod: 300, TickEvery: 100, OpSpacing: 100,
	}
	res, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckShape(); err != nil {
		t.Fatal(err)
	}
	if len(res.NoTriggers.Points) != cfg.Ops || len(res.WithTrigger.Points) != cfg.Ops {
		t.Fatal("both variants should observe every op")
	}
	// Quality staircase: without triggers, quality grows between explicit
	// pulls.
	pts := res.NoTriggers.Points
	if !(pts[2].Quality > pts[0].Quality) {
		t.Fatalf("quality should accumulate: %v", pts[:3])
	}
	out := res.SummaryTable().String()
	if !strings.Contains(out, "no-triggers") || !strings.Contains(out, "with-pull-trigger") {
		t.Fatalf("summary = %q", out)
	}
}

func TestFig6Validation(t *testing.T) {
	if _, err := RunFig6(Fig6Config{}); err == nil {
		t.Fatal("zero config should fail")
	}
}

func TestQualityMetricCombinesCommittedAndPending(t *testing.T) {
	d, err := NewDeployment(DeployConfig{Agents: 3, GroupSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	flight := d.FirstFlightOf(0)
	// Agent 1 works and pushes (committed), agent 2 works and does not
	// push (pending).
	a1, a2 := d.Agents[1], d.Agents[2]
	a1.CM.StartUse()
	a1.ARS.ConfirmTickets(1, flight)
	a1.CM.EndUse()
	if err := a1.CM.PushImage(); err != nil {
		t.Fatal(err)
	}
	a2.CM.StartUse()
	a2.ARS.ConfirmTickets(1, flight)
	a2.CM.EndUse()

	if got := d.Quality(0); got != 2 {
		t.Fatalf("quality = %d, want 2 (1 committed + 1 pending)", got)
	}
	// After agent 0 pulls, the committed part clears; the pending part
	// remains.
	if err := d.Agents[0].CM.PullImage(); err != nil {
		t.Fatal(err)
	}
	if got := d.Quality(0); got != 1 {
		t.Fatalf("quality = %d, want 1", got)
	}
}

func TestTimeSharingDeployment(t *testing.T) {
	d, err := NewDeployment(DeployConfig{Protocol: ProtoTimeSharing, Agents: 2, GroupSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.TS == nil {
		t.Fatal("TS handle should be set")
	}
	a := d.Agents[0]
	if err := a.CM.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := a.ReserveTickets(1, d.FirstFlightOf(0)); err != nil {
		t.Fatal(err)
	}
	if err := a.CM.PushImage(); err != nil {
		t.Fatal(err)
	}
	if err := a.CM.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestFig5StrongPhaseSerializes(t *testing.T) {
	// In the strong phase every sale must survive (one-copy semantics):
	// total reserved on the shared flight equals total ops.
	cfg := Fig5Config{Agents: 3, OpsPerPhase: 4, Latency: 1, PushEvery: 2}
	d, err := NewDeployment(DeployConfig{
		Protocol: ProtoFlecc, Agents: cfg.Agents, GroupSize: cfg.Agents,
		Latency: cfg.Latency, Mode: wire.Strong,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	flight := d.FirstFlightOf(0)
	for op := 0; op < cfg.OpsPerPhase; op++ {
		for _, a := range d.Agents {
			if err := a.ReserveTickets(1, flight); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, a := range d.Agents {
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
	}
	d.Agents = nil
	f, _ := d.DB.Flight(flight)
	want := cfg.OpsPerPhase * cfg.Agents
	if f.Reserved != want {
		t.Fatalf("reserved = %d, want %d (no lost updates in strong mode)", f.Reserved, want)
	}
}
