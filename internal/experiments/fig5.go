package experiments

import (
	"fmt"
	"io"

	"flecc/internal/metrics"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// Fig5Config parameterizes the adaptability experiment (paper Figure 5):
// "deploys ten conflicting travel agents connected to the main database,
// all running in the same LAN. Initially, they start in weak mode and
// execute in a loop the 'reserve tickets' operation. After that, the
// travel agents switch to strong mode, and execute the same set of
// operations. In the last phase, the travel agents switch back to weak.
// For this experiment, we measure the time to execute a method and the
// quality of the data used during the execution."
type Fig5Config struct {
	// Agents is the number of conflicting agents (paper: 10).
	Agents int
	// OpsPerPhase is how many reserve operations each agent performs in
	// each of the three phases.
	OpsPerPhase int
	// Latency is the LAN one-way latency in virtual ms; it is what makes
	// strong-mode operations visibly slower.
	Latency vclock.Duration
	// PushEvery makes agents push their pending updates every k-th
	// operation in weak mode (the paper's agents delegate pushing to a
	// time trigger; a deterministic op-count period keeps the figure
	// reproducible). Strong mode never needs pushes — invalidations carry
	// the updates.
	PushEvery int
}

// DefaultFig5 returns the paper's setting.
func DefaultFig5() Fig5Config {
	return Fig5Config{Agents: 10, OpsPerPhase: 10, Latency: 5, PushEvery: 5}
}

// Fig5Point is one observed operation.
type Fig5Point struct {
	// T is the virtual time at the start of the operation.
	T vclock.Time
	// Phase is "WEAK", "STRONG", or "WEAK2".
	Phase string
	// ExecTime is the simulated time the operation took (message round
	// trips for the pull plus any invalidations it caused).
	ExecTime vclock.Duration
	// Quality is the number of remote unseen updates at execution time
	// (0 = perfectly fresh).
	Quality int
}

// Fig5Result is the full timeline for one observed agent.
type Fig5Result struct {
	Config Fig5Config
	Points []Fig5Point
}

// RunFig5 executes the three-phase timeline and records, for agent 0,
// the per-operation execution time and data quality.
func RunFig5(cfg Fig5Config) (*Fig5Result, error) {
	if cfg.Agents <= 0 || cfg.OpsPerPhase <= 0 {
		return nil, fmt.Errorf("fig5: need positive Agents and OpsPerPhase")
	}
	if cfg.PushEvery <= 0 {
		cfg.PushEvery = 5
	}
	d, err := NewDeployment(DeployConfig{
		Protocol:  ProtoFlecc,
		Agents:    cfg.Agents,
		GroupSize: cfg.Agents, // all conflicting
		Latency:   cfg.Latency,
		Mode:      wire.Weak,
	})
	if err != nil {
		return nil, err
	}
	defer d.Close()

	res := &Fig5Result{Config: cfg}
	flight := d.FirstFlightOf(0)

	runPhase := func(phase string, mode wire.Mode) error {
		for _, a := range d.Agents {
			if a.CM.Mode() != mode {
				if err := a.CM.SetMode(mode); err != nil {
					return err
				}
			}
		}
		for op := 0; op < cfg.OpsPerPhase; op++ {
			for i, a := range d.Agents {
				start := d.Clock.Now()
				var quality int
				if i == 0 {
					// Quality of the data used during execution: sampled
					// after the pull, before the work.
					if err := a.CM.PullImage(); err != nil {
						return err
					}
					quality = d.Quality(0)
					if err := a.CM.StartUse(); err != nil {
						return err
					}
					if err := a.ARS.ConfirmTickets(1, flight); err != nil {
						return err
					}
					a.CM.EndUse()
				} else {
					if err := a.ReserveTickets(1, flight); err != nil {
						return err
					}
				}
				// The method execution ends here; the point is recorded
				// before the (background) publish below, which is not part
				// of the method's latency.
				if i == 0 {
					res.Points = append(res.Points, Fig5Point{
						T:        start,
						Phase:    phase,
						ExecTime: d.Clock.Now() - start,
						Quality:  quality,
					})
				}
				// Weak-mode agents publish every PushEvery ops; strong
				// mode moves data via invalidations.
				if mode == wire.Weak && (op+1)%cfg.PushEvery == 0 {
					if err := a.CM.PushImage(); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}

	if err := runPhase("WEAK", wire.Weak); err != nil {
		return nil, err
	}
	if err := runPhase("STRONG", wire.Strong); err != nil {
		return nil, err
	}
	if err := runPhase("WEAK2", wire.Weak); err != nil {
		return nil, err
	}
	return res, nil
}

// PhaseSummary aggregates a phase's points.
type PhaseSummary struct {
	Phase       string
	MeanExec    float64
	MaxExec     vclock.Duration
	MeanQuality float64
	MaxQuality  int
}

// Summaries aggregates the timeline per phase, in phase order.
func (r *Fig5Result) Summaries() []PhaseSummary {
	order := []string{"WEAK", "STRONG", "WEAK2"}
	out := make([]PhaseSummary, 0, 3)
	for _, phase := range order {
		var s PhaseSummary
		s.Phase = phase
		n := 0
		for _, p := range r.Points {
			if p.Phase != phase {
				continue
			}
			n++
			s.MeanExec += float64(p.ExecTime)
			s.MeanQuality += float64(p.Quality)
			if p.ExecTime > s.MaxExec {
				s.MaxExec = p.ExecTime
			}
			if p.Quality > s.MaxQuality {
				s.MaxQuality = p.Quality
			}
		}
		if n > 0 {
			s.MeanExec /= float64(n)
			s.MeanQuality /= float64(n)
		}
		out = append(out, s)
	}
	return out
}

// Table renders the per-operation timeline.
func (r *Fig5Result) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Figure 5 — execution time vs data quality across WEAK/STRONG/WEAK (%d agents, latency %v)",
			r.Config.Agents, r.Config.Latency),
		"t", "phase", "exec-ms", "quality")
	for _, p := range r.Points {
		t.AddRowf("", p.T, p.Phase, int64(p.ExecTime), p.Quality)
	}
	return t
}

// SummaryTable renders the per-phase aggregate.
func (r *Fig5Result) SummaryTable() *metrics.Table {
	t := metrics.NewTable("Figure 5 — per-phase summary",
		"phase", "mean-exec-ms", "max-exec-ms", "mean-quality", "max-quality")
	for _, s := range r.Summaries() {
		t.AddRowf("", s.Phase, fmt.Sprintf("%.1f", s.MeanExec), int64(s.MaxExec),
			fmt.Sprintf("%.1f", s.MeanQuality), s.MaxQuality)
	}
	return t
}

// WriteTo prints both tables.
func (r *Fig5Result) WriteTo(w io.Writer) (int64, error) {
	n1, err := r.SummaryTable().WriteTo(w)
	if err != nil {
		return n1, err
	}
	n2, err := r.Table().WriteTo(w)
	return n1 + n2, err
}

// CheckShape verifies the paper's qualitative claims: strong-mode
// operations are slower than weak-mode ones, strong-mode data quality is
// perfect (0 unseen updates), and weak-mode quality degrades (is worse
// than strong's).
func (r *Fig5Result) CheckShape() error {
	s := r.Summaries()
	weak, strong, weak2 := s[0], s[1], s[2]
	if strong.MeanExec <= weak.MeanExec {
		return fmt.Errorf("fig5: strong exec (%.1f) should exceed weak exec (%.1f)", strong.MeanExec, weak.MeanExec)
	}
	if strong.MeanExec <= weak2.MeanExec {
		return fmt.Errorf("fig5: strong exec (%.1f) should exceed weak2 exec (%.1f)", strong.MeanExec, weak2.MeanExec)
	}
	if strong.MaxQuality != 0 {
		return fmt.Errorf("fig5: strong mode must always use fresh data, max quality = %d", strong.MaxQuality)
	}
	if weak.MaxQuality == 0 && weak2.MaxQuality == 0 {
		return fmt.Errorf("fig5: weak phases should show stale data")
	}
	return nil
}
