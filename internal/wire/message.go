// Package wire defines the message taxonomy exchanged between Flecc cache
// managers and the directory manager (paper §4.2, Figure 2), and a compact
// hand-written binary codec for sending those messages over byte streams.
//
// The paper's prototype used Java RMI; this reproduction substitutes an
// explicit message protocol so that the same messages can flow over an
// in-process network, a deterministic simulated LAN, or TCP — and so that
// the experiments can count them (Figures 4 and 6 measure exactly the
// number of messages between cache managers and the directory manager).
package wire

import (
	"fmt"

	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/vclock"
)

// Type identifies a protocol message.
type Type uint8

const (
	// TInvalid is the zero Type, never sent.
	TInvalid Type = iota

	// --- cache manager → directory manager requests ---

	// TRegister announces a new view and carries its property set, mode,
	// and trigger sources (Figure 2, step 2).
	TRegister
	// TUnregister announces that the view is leaving (killImage;
	// Figure 2, steps 20–21).
	TUnregister
	// TInit asks for the view's initial image (initImage; steps 3–5).
	TInit
	// TPull asks for the freshest image (pullImage). Since carries the
	// version the view already holds so the DM can reply with a delta.
	TPull
	// TPush sends the view's modified data to the primary (pushImage).
	TPush
	// TAcquire asks for exclusive use in strong mode (startUseImage).
	TAcquire
	// TRelease ends exclusive use in strong mode (endUseImage).
	TRelease
	// TSetMode switches the view between strong and weak operation.
	TSetMode
	// TSetProps installs a new property set for the view at run time.
	TSetProps

	// --- directory manager → cache manager requests ---

	// TInvalidate tells a cache manager to stop using its data and return
	// its pending updates (Figure 2, steps 12–14).
	TInvalidate
	// TUpdate pushes a fresh image to an interested view (weak mode
	// propagation, and the whole of the multicast baseline).
	TUpdate

	// --- replies (either direction) ---

	// TAck is a generic success reply; payload fields depend on the
	// request (e.g. TPush's TAck carries the new primary version).
	TAck
	// TImage is a reply carrying an object image (TInit, TPull,
	// TInvalidate replies).
	TImage
	// TErr is a failure reply; Err holds the message.
	TErr

	// --- sharded directory service (internal/shard) ---

	// TRouted is the router→shard envelope: View names the originating
	// view and Blob carries the encoded inner request. The shard directory
	// manager unwraps it and dispatches the inner message as if the view
	// had called it directly.
	TRouted
	// TMigrateTake asks a shard directory manager to hand over its
	// protocol metadata (directory.Handover) for the views listed in Blob
	// (all its views when the list is empty) and to stop serving them.
	TMigrateTake
	// TMigrateApply delivers a directory.Handover (in Blob) to the target
	// shard, which absorbs the metadata and starts serving the views.
	TMigrateApply

	// --- transport-level handshake ---

	// THello is the connection handshake: a dialing client announces its
	// node name and waits for THelloAck before issuing calls. The peer
	// read loop answers it directly (no handler involved), which bounds
	// connection establishment against dead or non-accepting listeners.
	THello
	// THelloAck acknowledges THello.
	THelloAck

	// --- hot-standby replication (internal/directory) ---

	// TReplicate ships a replication batch from a primary directory
	// manager to a standby: Blob carries the encoded directory.ReplBatch
	// (snapshot-since metadata, values, view-registration state, and the
	// sender's epoch). A batch with Promote set orders the receiver to
	// take over as primary under a higher epoch.
	TReplicate
	// TReplAck acknowledges TReplicate; Version reports the standby's
	// durable watermark (its highest absorbed primary version), which the
	// primary uses to rewind after gaps and to size catch-up deltas.
	TReplAck
)

var typeNames = map[Type]string{
	TInvalid:    "invalid",
	TRegister:   "register",
	TUnregister: "unregister",
	TInit:       "init",
	TPull:       "pull",
	TPush:       "push",
	TAcquire:    "acquire",
	TRelease:    "release",
	TSetMode:    "set-mode",
	TSetProps:   "set-props",
	TInvalidate: "invalidate",
	TUpdate:     "update",
	TAck:        "ack",
	TImage:      "image",
	TErr:        "err",

	TRouted:       "routed",
	TMigrateTake:  "migrate-take",
	TMigrateApply: "migrate-apply",
	THello:        "hello",
	THelloAck:     "hello-ack",
	TReplicate:    "replicate",
	TReplAck:      "repl-ack",
}

func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// NotServingMark is the substring a directory manager's refusal carries
// when the node is alive but not serving client traffic — a hot standby
// awaiting promotion, or a fenced ex-primary. Reconnecting cache
// managers treat such refusals like a dead endpoint and rotate to their
// next fallback address instead of surfacing the error.
const NotServingMark = "not serving"

// Mode is a view's consistency mode (paper §4: strong vs weak).
type Mode uint8

const (
	// Weak allows multiple simultaneously active views with relaxed
	// freshness.
	Weak Mode = iota
	// Strong enforces a single active view — one-copy serializability.
	Strong
)

func (m Mode) String() string {
	if m == Strong {
		return "strong"
	}
	return "weak"
}

// OpClass tags the operation a view is about to perform on the shared data.
// The base protocol ignores it; the read/write-semantics extension
// (internal/rwsem, paper §6 future work) uses it to skip invalidations for
// read-only use.
type OpClass uint8

const (
	// OpWrite is the conservative default: the view may modify the data.
	OpWrite OpClass = iota
	// OpRead promises the view will not modify the data.
	OpRead
)

func (o OpClass) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// Triggers bundles the three quality-trigger sources a view may register
// (paper §4.1): push, pull, and validity.
type Triggers struct {
	Push     string
	Pull     string
	Validity string
}

// Message is the single on-wire record. Fields beyond Type/Seq/From are
// request-specific; unused fields are zero and encode compactly.
type Message struct {
	// Type discriminates the message.
	Type Type
	// Seq correlates replies with requests: a reply echoes its request's
	// Seq. Assigned by the sending endpoint.
	Seq uint64
	// From names the sending node (view ID or directory ID).
	From string
	// View names the subject view for DM-side bookkeeping (usually the
	// requesting view; for TInvalidate/TUpdate, the target).
	View string
	// Mode is used by TRegister and TSetMode.
	Mode Mode
	// Op tags TAcquire/TPull with the intended operation class.
	Op OpClass
	// Since is the version the sender already holds (TPull).
	Since vclock.Version
	// Version is the primary version (TAck for push, TImage replies).
	Version vclock.Version
	// Ops counts the logical operations (use windows) folded into the
	// carried image (TPush and fetch/invalidate TImage replies). The
	// directory manager logs it so the experiments can report data quality
	// as "number of remote unseen updates".
	Ops uint32
	// Props carries a property set (TRegister, TSetProps).
	Props property.Set
	// Trig carries trigger sources (TRegister).
	Trig Triggers
	// Img carries an object image (TPush, TImage, TUpdate, TInvalidate
	// replies).
	Img *image.Image
	// Blob carries an opaque nested payload: the encoded inner message for
	// TRouted, the encoded view-name list for TMigrateTake, and the encoded
	// directory.Handover for TMigrateApply (and TMigrateTake's TAck reply).
	Blob []byte
	// Err is the error text for TErr.
	Err string

	// Pre, if non-nil, is this message's body pre-encoded by Preencode.
	// Byte-stream transports serialize the per-link header and reuse
	// these bytes instead of re-encoding the body, so a fan-out round
	// that shares one Pre across N targets encodes its payload once.
	// It is transport metadata, never itself sent on the wire: Decode
	// leaves it nil. Pre must have been produced from this message's
	// body fields, which must not be mutated while Pre is attached.
	Pre *Frame
}

// IsReply reports whether the message is a reply type.
func (m *Message) IsReply() bool {
	return m.Type == TAck || m.Type == TImage || m.Type == TErr || m.Type == TReplAck
}

// String renders a compact human-readable summary for logs.
func (m *Message) String() string {
	s := fmt.Sprintf("%s seq=%d from=%s", m.Type, m.Seq, m.From)
	if m.View != "" {
		s += " view=" + m.View
	}
	if m.Img != nil {
		s += fmt.Sprintf(" img(v%d,%d)", m.Img.Version, m.Img.Len())
	}
	if m.Err != "" {
		s += " err=" + m.Err
	}
	return s
}

// ErrorOf converts a TErr reply into a Go error (nil for other types).
func ErrorOf(m *Message) error {
	if m != nil && m.Type == TErr {
		return &RemoteError{Msg: m.Err}
	}
	return nil
}

// RemoteError is an error reported by the remote side of a call.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "wire: remote error: " + e.Msg }
