package wire

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"

	"flecc/internal/image"
	"flecc/internal/property"
)

// Preencode must be invisible on the wire: a message with Pre attached
// encodes byte-identically to the same message without it, for every
// generated shape. This is what lets a fan-out round share one body across
// targets without perturbing figure byte counts.
func TestPreencodeBytesIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for i := 0; i < 300; i++ {
		m := genMessage(r)
		plain := Encode(m)
		m.Pre = Preencode(m)
		pre := Encode(m)
		if !bytes.Equal(plain, pre) {
			t.Fatalf("message %d: Pre-attached encoding differs (%d vs %d bytes)", i, len(plain), len(pre))
		}
	}
}

// The per-link header really is per-link: two targets sharing one Pre but
// differing in Seq/From/View must decode to their own header fields and a
// common body.
func TestPreencodeSharedAcrossTargets(t *testing.T) {
	base := sampleMessage()
	base.Pre = Preencode(base)
	for _, target := range []string{"agent-1", "agent-2", "agent-3"} {
		m := *base // shallow clone shares Img and Pre
		m.View = target
		m.Seq = uint64(len(target))
		got, err := Decode(Encode(&m))
		if err != nil {
			t.Fatalf("target %s: %v", target, err)
		}
		if got.View != target || got.Seq != m.Seq {
			t.Fatalf("target %s: header fields lost (view=%q seq=%d)", target, got.View, got.Seq)
		}
		want := *base
		want.View = target
		want.Seq = m.Seq
		if !messagesEqual(&want, got) {
			t.Fatalf("target %s: body mismatch", target)
		}
	}
}

// EncodeFrame output must be byte-identical to WriteFrame for the same
// message, with and without an attached Pre, across the inline and
// segmented (large-body) paths.
func TestEncodeFrameMatchesWriteFrame(t *testing.T) {
	big := allocTestMessage(600) // body comfortably over inlineBody
	if Preencode(big).BodyLen() <= inlineBody {
		t.Fatal("test message too small to exercise the segmented path")
	}
	msgs := []*Message{
		{Type: TAck, Seq: 1, From: "dm"},
		sampleMessage(),
		big,
	}
	for i, m := range msgs {
		for _, withPre := range []bool{false, true} {
			mm := *m
			if withPre {
				mm.Pre = Preencode(&mm)
			}
			var want bytes.Buffer
			if err := WriteFrame(&want, &mm); err != nil {
				t.Fatal(err)
			}
			f, err := EncodeFrame(&mm)
			if err != nil {
				t.Fatal(err)
			}
			if f.Len() != want.Len() {
				t.Fatalf("msg %d pre=%v: Len = %d, want %d", i, withPre, f.Len(), want.Len())
			}
			var gotW bytes.Buffer
			if _, err := f.WriteTo(&gotW); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotW.Bytes(), want.Bytes()) {
				t.Fatalf("msg %d pre=%v: WriteTo bytes differ", i, withPre)
			}
			var gotS []byte
			for _, seg := range f.Segments() {
				gotS = append(gotS, seg...)
			}
			if !bytes.Equal(gotS, want.Bytes()) {
				t.Fatalf("msg %d pre=%v: Segments bytes differ", i, withPre)
			}
			f.Release()
		}
	}
}

// A large pre-encoded body is referenced, not copied: the frame carries two
// segments and the second aliases the Frame's bytes.
func TestEncodeFrameSegmentsLargeBody(t *testing.T) {
	m := allocTestMessage(600)
	m.Pre = Preencode(m)
	f, err := EncodeFrame(m)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Release()
	segs := f.Segments()
	if len(segs) != 2 {
		t.Fatalf("want 2 segments for a large shared body, got %d", len(segs))
	}
	if &segs[1][0] != &m.Pre.body[0] {
		t.Fatal("large body should be referenced, not copied")
	}
}

func TestEncodeFrameTooLarge(t *testing.T) {
	val := strings.Repeat("x", maxFrame/4)
	img := image.New(property.MustSet("A={1..8}"))
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		img.Put(image.Entry{Key: k, Value: []byte(val), Version: 1, Writer: "w"})
	}
	m := &Message{Type: TPush, Img: img}
	if _, err := EncodeFrame(m); err == nil {
		t.Fatal("oversized frame should fail to encode")
	}
}

// FrameReader must read back-to-back frames off a stream identically to
// ReadFrame, including across its internal buffer boundary and for frames
// larger than the buffer.
func TestFrameReaderStream(t *testing.T) {
	r := rand.New(rand.NewSource(54))
	var msgs []*Message
	var buf bytes.Buffer
	for i := 0; i < 200; i++ {
		m := genMessage(r)
		msgs = append(msgs, m)
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	big := allocTestMessage(3000) // frame well over frameReaderBuf
	msgs = append(msgs, big)
	if err := WriteFrame(&buf, big); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(iotest{r: &buf})
	for i, want := range msgs {
		got, err := fr.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !messagesEqual(want, got) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if _, err := fr.Read(); err != io.EOF {
		t.Fatalf("want EOF past the end, got %v", err)
	}
}

// iotest dribbles reads in small odd-sized chunks so frames straddle read
// boundaries.
type iotest struct{ r io.Reader }

func (d iotest) Read(p []byte) (int, error) {
	if len(p) > 7 {
		p = p[:7]
	}
	return d.r.Read(p)
}

func TestFrameReaderLimits(t *testing.T) {
	fr := NewFrameReader(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF}))
	if _, err := fr.Read(); err == nil {
		t.Fatal("oversized frame should fail")
	}
}

// Decoded messages must not alias the reader's scratch: reading the next
// frame cannot mutate the previous message.
func TestFrameReaderNoAliasing(t *testing.T) {
	var buf bytes.Buffer
	a := sampleMessage()
	b := allocTestMessage(10)
	if err := WriteFrame(&buf, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, b); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	gotA, err := fr.Read()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Read(); err != nil { // overwrites the scratch
		t.Fatal(err)
	}
	if !messagesEqual(a, gotA) {
		t.Fatal("first message corrupted by the second read")
	}
}
