package wire

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/vclock"
)

func allocTestMessage(entries int) *Message {
	img := image.New(property.MustSet("Flights={100..139}"))
	for i := 0; i < entries; i++ {
		img.Put(image.Entry{
			Key:     fmt.Sprintf("flight/%03d", i),
			Value:   []byte("NYC|SFO|200|57|19900"),
			Version: vclock.Version(i),
			Writer:  "agent-042",
		})
	}
	img.Version = vclock.Version(entries)
	return &Message{
		Type: TPush, Seq: 42, From: "agent-042", View: "agent-042",
		Ops: 7, Img: img,
	}
}

// TestCodecEncodeAllocs pins the allocation budget of the encode hot path.
// With the pooled scratch buffer, Encode allocates the returned slice plus
// the Props/Keys rendering — not a chain of buffer growths proportional to
// message size. The bounds are ceilings with a little headroom; a failure
// here means someone dropped the pool or added a per-entry allocation.
func TestCodecEncodeAllocs(t *testing.T) {
	m := allocTestMessage(40)
	// Warm the pool so the measurement sees steady state.
	for i := 0; i < 4; i++ {
		Encode(m)
	}
	got := testing.AllocsPerRun(100, func() { Encode(m) })
	// Result copy (1) + two Props.String() renderings + one Keys() slice,
	// each a handful of allocations.
	const maxEncode = 12
	if got > maxEncode {
		t.Errorf("Encode allocs/op = %.1f, want <= %d", got, maxEncode)
	}

	got = testing.AllocsPerRun(100, func() {
		if err := WriteFrame(io.Discard, m); err != nil {
			t.Fatal(err)
		}
	})
	// WriteFrame reuses the pooled buffer outright: no result copy.
	const maxFrameAllocs = 11
	if got > maxFrameAllocs {
		t.Errorf("WriteFrame allocs/op = %.1f, want <= %d", got, maxFrameAllocs)
	}
}

// repeatFrames serves the same pre-framed bytes forever, so a steady-state
// read loop can be measured without re-writing frames inside the run.
type repeatFrames struct {
	b   []byte
	off int
}

func (r *repeatFrames) Read(p []byte) (int, error) {
	if r.off == len(r.b) {
		r.off = 0
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}

// TestRoundTripAllocs pins the steady-state allocation budget of a full
// WriteFrame + FrameReader.Read round trip — the per-message cost of the
// buffered wire path. The ceilings are what pooling buys: the write side is
// alloc-free for small messages, and the read side allocates only the
// decoded Message (plus its strings/entries), never the payload buffer.
func TestRoundTripAllocs(t *testing.T) {
	cases := []struct {
		name string
		m    *Message
		max  float64
	}{
		// Decode of a tiny ack allocates the Message and nothing else;
		// WriteFrame is alloc-free.
		{"small-ack", &Message{Type: TAck, Seq: 7, From: "dm", Version: 9}, 3},
		// A keyed-image push pays for the decoded image: per entry a key,
		// a value copy, a writer string, and the map insert.
		{"keyed-push", allocTestMessage(8), 60},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, tc.m); err != nil {
				t.Fatal(err)
			}
			fr := NewFrameReader(&repeatFrames{b: buf.Bytes()})
			// Warm the pool and the reader scratch.
			for i := 0; i < 8; i++ {
				if err := WriteFrame(io.Discard, tc.m); err != nil {
					t.Fatal(err)
				}
				if _, err := fr.Read(); err != nil {
					t.Fatal(err)
				}
			}
			got := testing.AllocsPerRun(200, func() {
				if err := WriteFrame(io.Discard, tc.m); err != nil {
					t.Fatal(err)
				}
				if _, err := fr.Read(); err != nil {
					t.Fatal(err)
				}
			})
			if got > tc.max {
				t.Errorf("round-trip allocs/op = %.1f, want <= %.0f", got, tc.max)
			}
		})
	}
}
