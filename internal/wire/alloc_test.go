package wire

import (
	"fmt"
	"io"
	"testing"

	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/vclock"
)

func allocTestMessage(entries int) *Message {
	img := image.New(property.MustSet("Flights={100..139}"))
	for i := 0; i < entries; i++ {
		img.Put(image.Entry{
			Key:     fmt.Sprintf("flight/%03d", i),
			Value:   []byte("NYC|SFO|200|57|19900"),
			Version: vclock.Version(i),
			Writer:  "agent-042",
		})
	}
	img.Version = vclock.Version(entries)
	return &Message{
		Type: TPush, Seq: 42, From: "agent-042", View: "agent-042",
		Ops: 7, Img: img,
	}
}

// TestCodecEncodeAllocs pins the allocation budget of the encode hot path.
// With the pooled scratch buffer, Encode allocates the returned slice plus
// the Props/Keys rendering — not a chain of buffer growths proportional to
// message size. The bounds are ceilings with a little headroom; a failure
// here means someone dropped the pool or added a per-entry allocation.
func TestCodecEncodeAllocs(t *testing.T) {
	m := allocTestMessage(40)
	// Warm the pool so the measurement sees steady state.
	for i := 0; i < 4; i++ {
		Encode(m)
	}
	got := testing.AllocsPerRun(100, func() { Encode(m) })
	// Result copy (1) + two Props.String() renderings + one Keys() slice,
	// each a handful of allocations.
	const maxEncode = 12
	if got > maxEncode {
		t.Errorf("Encode allocs/op = %.1f, want <= %d", got, maxEncode)
	}

	got = testing.AllocsPerRun(100, func() {
		if err := WriteFrame(io.Discard, m); err != nil {
			t.Fatal(err)
		}
	})
	// WriteFrame reuses the pooled buffer outright: no result copy.
	const maxFrameAllocs = 11
	if got > maxFrameAllocs {
		t.Errorf("WriteFrame allocs/op = %.1f, want <= %d", got, maxFrameAllocs)
	}
}
