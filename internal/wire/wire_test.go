package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/vclock"
)

func sampleImage() *image.Image {
	im := image.New(property.MustSet("Flights={100..102}"))
	im.Version = 7
	im.Put(image.Entry{Key: "f/100", Value: []byte("seats=42"), Version: 5, Writer: "agent-1"})
	im.Put(image.Entry{Key: "f/101", Value: nil, Version: 6, Writer: "agent-2", Deleted: true})
	return im
}

func sampleMessage() *Message {
	return &Message{
		Type:    TRegister,
		Seq:     42,
		From:    "agent-1",
		View:    "agent-1",
		Mode:    Strong,
		Op:      OpRead,
		Since:   3,
		Version: 9,
		Props:   property.MustSet("Flights={100..102}; Seats=[0,400]"),
		Trig:    Triggers{Push: "(t > 1500)", Pull: "every(500)", Validity: "t > 0"},
		Img:     sampleImage(),
		Blob:    []byte{0xde, 0xad, 0xbe, 0xef},
		Err:     "",
	}
}

func messagesEqual(a, b *Message) bool {
	if a.Type != b.Type || a.Seq != b.Seq || a.From != b.From || a.View != b.View ||
		a.Mode != b.Mode || a.Op != b.Op || a.Since != b.Since || a.Version != b.Version ||
		a.Ops != b.Ops || a.Trig != b.Trig || a.Err != b.Err || !bytes.Equal(a.Blob, b.Blob) {
		return false
	}
	if !a.Props.Equal(b.Props) {
		return false
	}
	if (a.Img == nil) != (b.Img == nil) {
		return false
	}
	if a.Img != nil {
		if a.Img.Version != b.Img.Version || !a.Img.Equal(b.Img) || !a.Img.Props.Equal(b.Img.Props) {
			return false
		}
		// Entry metadata must survive too.
		for k, e := range a.Img.Entries {
			oe := b.Img.Entries[k]
			if e.Version != oe.Version || e.Writer != oe.Writer {
				return false
			}
		}
	}
	return true
}

func TestRoundTripFull(t *testing.T) {
	m := sampleMessage()
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if !messagesEqual(m, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", m, got)
	}
}

func TestRoundTripMinimal(t *testing.T) {
	m := &Message{Type: TAck, Seq: 1, From: "dm"}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if !messagesEqual(m, got) {
		t.Fatalf("minimal round trip mismatch: %+v vs %+v", m, got)
	}
	if got.Img != nil {
		t.Fatal("nil image should stay nil")
	}
	if !got.Props.IsEmpty() {
		t.Fatal("empty props should stay empty")
	}
}

func TestRoundTripError(t *testing.T) {
	m := &Message{Type: TErr, Seq: 2, From: "dm", Err: "view not registered"}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Err != m.Err {
		t.Fatalf("err = %q", got.Err)
	}
	rerr := ErrorOf(got)
	if rerr == nil || !strings.Contains(rerr.Error(), "view not registered") {
		t.Fatalf("ErrorOf = %v", rerr)
	}
	if ErrorOf(&Message{Type: TAck}) != nil {
		t.Fatal("ErrorOf(ack) should be nil")
	}
}

func TestFraming(t *testing.T) {
	var buf bytes.Buffer
	msgs := []*Message{
		sampleMessage(),
		{Type: TPull, Seq: 2, From: "a", Since: 5},
		{Type: TAck, Seq: 2, From: "dm", Version: 8},
	}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !messagesEqual(want, got) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("reading past the end should fail")
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := Encode(sampleMessage())
	for cut := 0; cut < len(full); cut++ {
		if _, err := Decode(full[:cut]); err == nil {
			t.Fatalf("Decode of %d/%d bytes should fail", cut, len(full))
		}
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	b := append(Encode(sampleMessage()), 0xFF)
	if _, err := Decode(b); err == nil {
		t.Fatal("trailing bytes should fail")
	}
}

func TestDecodeBadVersion(t *testing.T) {
	b := Encode(sampleMessage())
	b[0] = 99
	if _, err := Decode(b); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
}

func TestDecodeBadProps(t *testing.T) {
	m := &Message{Type: TRegister, From: "x", Props: property.MustSet("A={1}")}
	b := Encode(m)
	// Corrupt the props text: find "A={1}" and break it.
	b = bytes.Replace(b, []byte("A={1}"), []byte("A=!!!"), 1)
	if _, err := Decode(b); err == nil {
		t.Fatal("bad props payload should fail")
	}
}

func TestReadFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GiB frame
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized frame should fail")
	}
}

func TestTypeAndModeStrings(t *testing.T) {
	if TPull.String() != "pull" || TInvalidate.String() != "invalidate" {
		t.Fatal("type names wrong")
	}
	if Type(200).String() == "" {
		t.Fatal("unknown type should still render")
	}
	if Strong.String() != "strong" || Weak.String() != "weak" {
		t.Fatal("mode names wrong")
	}
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatal("op names wrong")
	}
}

func TestMessageString(t *testing.T) {
	s := sampleMessage().String()
	for _, want := range []string{"register", "seq=42", "agent-1", "img(v7,2)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestIsReply(t *testing.T) {
	for _, typ := range []Type{TAck, TImage, TErr, TReplAck} {
		if !(&Message{Type: typ}).IsReply() {
			t.Fatalf("%v should be a reply", typ)
		}
	}
	for _, typ := range []Type{TRegister, TPull, TInvalidate, TReplicate} {
		if (&Message{Type: typ}).IsReply() {
			t.Fatalf("%v should not be a reply", typ)
		}
	}
}

func genMessage(r *rand.Rand) *Message {
	m := &Message{
		Type:    Type(1 + r.Intn(13)),
		Seq:     r.Uint64(),
		From:    randWord(r),
		View:    randWord(r),
		Mode:    Mode(r.Intn(2)),
		Op:      OpClass(r.Intn(2)),
		Since:   vclock.Version(r.Uint64() % 1000),
		Version: vclock.Version(r.Uint64() % 1000),
		Ops:     uint32(r.Intn(100)),
		Err:     randWord(r),
	}
	if r.Intn(2) == 0 {
		m.Trig = Triggers{Push: "t > 5", Pull: "every(10)", Validity: ""}
	}
	if r.Intn(3) == 0 {
		m.Blob = []byte(randWord(r))
	}
	if r.Intn(2) == 0 {
		m.Props = property.NewSet(property.New("P", property.DiscreteInts(r.Intn(10), r.Intn(10)+10)))
	}
	if r.Intn(2) == 0 {
		im := image.New(m.Props.Clone())
		for i := r.Intn(4); i > 0; i-- {
			im.Put(image.Entry{
				Key:     randWord(r),
				Value:   []byte(randWord(r)),
				Version: vclock.Version(r.Intn(100)),
				Writer:  randWord(r),
				Deleted: r.Intn(4) == 0,
			})
		}
		im.Version = vclock.Version(r.Intn(100))
		m.Img = im
	}
	return m
}

func randWord(r *rand.Rand) string {
	n := r.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(26))
	}
	return string(b)
}

func TestQuickRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(50))
	f := func() bool {
		m := genMessage(r)
		got, err := Decode(Encode(m))
		if err != nil {
			return false
		}
		return messagesEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Encoding is deterministic: identical messages produce identical bytes
// (required for reproducible experiment byte counts).
func TestQuickEncodeDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	f := func() bool {
		m := genMessage(r)
		return bytes.Equal(Encode(m), Encode(m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeFuzzNoPanic(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	for i := 0; i < 2000; i++ {
		n := r.Intn(200)
		b := make([]byte, n)
		r.Read(b)
		if n > 0 {
			b[0] = codecVersion // get past the version gate sometimes
		}
		_, _ = Decode(b) // must not panic
	}
}

func TestEntryMetadataOrderIndependent(t *testing.T) {
	// Encoding sorts entries by key, so logically equal images encode
	// identically regardless of insertion order.
	a := image.New(property.NewSet())
	a.Put(image.Entry{Key: "b", Value: []byte("2")})
	a.Put(image.Entry{Key: "a", Value: []byte("1")})
	b := image.New(property.NewSet())
	b.Put(image.Entry{Key: "a", Value: []byte("1")})
	b.Put(image.Entry{Key: "b", Value: []byte("2")})
	ma := Encode(&Message{Type: TPush, Img: a})
	mb := Encode(&Message{Type: TPush, Img: b})
	if !reflect.DeepEqual(ma, mb) {
		t.Fatal("encoding should be insertion-order independent")
	}
}
