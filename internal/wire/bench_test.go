package wire

import (
	"bytes"
	"io"
	"testing"
)

// BenchmarkWireRoundTrip measures one framed message's write + read cost
// through the buffered wire path (WriteFrame to a sink, FrameReader off a
// repeating stream) — the per-frame floor underneath every transport call.
func BenchmarkWireRoundTrip(b *testing.B) {
	cases := []struct {
		name string
		m    *Message
	}{
		{"ack", &Message{Type: TAck, Seq: 7, From: "dm", Version: 9}},
		{"push8", allocTestMessage(8)},
		{"push128", allocTestMessage(128)},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, tc.m); err != nil {
				b.Fatal(err)
			}
			fr := NewFrameReader(&repeatFrames{b: buf.Bytes()})
			b.SetBytes(int64(buf.Len()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := WriteFrame(io.Discard, tc.m); err != nil {
					b.Fatal(err)
				}
				if _, err := fr.Read(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFrameReaderVsReadFrame isolates the read side: the buffered,
// scratch-reusing FrameReader against the old exact-read ReadFrame on the
// same byte stream.
func BenchmarkFrameReaderVsReadFrame(b *testing.B) {
	m := allocTestMessage(8)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, m); err != nil {
		b.Fatal(err)
	}
	b.Run("readframe", func(b *testing.B) {
		src := &repeatFrames{b: buf.Bytes()}
		b.SetBytes(int64(buf.Len()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ReadFrame(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("framereader", func(b *testing.B) {
		fr := NewFrameReader(&repeatFrames{b: buf.Bytes()})
		b.SetBytes(int64(buf.Len()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fr.Read(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPreencode measures the encode-once body split: serializing a
// fan-out round's payload to N targets with a fresh full encode per target
// versus one Preencode plus a per-target header stamp.
func BenchmarkPreencode(b *testing.B) {
	m := allocTestMessage(64)
	b.Run("per-target", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mm := *m
			mm.View = "target"
			if err := WriteFrame(io.Discard, &mm); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode-once", func(b *testing.B) {
		pre := Preencode(m)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mm := *m
			mm.View = "target"
			mm.Pre = pre
			if err := WriteFrame(io.Discard, &mm); err != nil {
				b.Fatal(err)
			}
		}
	})
}
