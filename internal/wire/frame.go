package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// This file is the coalesced wire path: pre-encoded shareable bodies for
// encode-once fan-out (Frame / Preencode), socket-ready framed encodings
// that can reference a shared body without copying it (EncodedFrame), and
// a buffered frame reader with a reusable payload scratch (FrameReader).
//
// The byte format is unchanged: a frame is still a u32 length prefix
// followed by header (codec version, Type, Seq, From, View) and body
// (everything else), and header||body is byte-identical to the pre-split
// single-buffer encoding, so old and new peers interoperate and figure
// byte counts stay stable.

// Frame is a shareable pre-encoded message body — everything after the
// per-link header (Type/Seq/From/View). A directory-manager round that
// sends the same payload to N views encodes the body once with Preencode
// and stamps only the small header per target. A Frame is immutable after
// Preencode and safe to share across concurrent sends.
type Frame struct {
	body []byte
}

// Preencode serializes m's body fields once and returns the shareable
// Frame. Attach it to each per-target message via Message.Pre; the
// message's body fields must stay untouched afterwards (byte-stream
// transports trust the Frame to match them).
func Preencode(m *Message) *Frame {
	e := getEncoder()
	e.body(m)
	body := make([]byte, len(e.buf))
	copy(body, e.buf)
	putEncoder(e)
	return &Frame{body: body}
}

// BodyLen returns the encoded body size in bytes.
func (f *Frame) BodyLen() int { return len(f.body) }

// inlineBody bounds the pre-encoded body size that EncodeFrame copies
// into the header buffer: below it a memcpy is cheaper than carrying a
// second writev segment through the write path.
const inlineBody = 4 << 10

// EncodedFrame is one message framed for a byte stream: a pooled buffer
// holding the length prefix and header, plus (for large pre-encoded
// bodies) a reference to the shared body bytes. It is produced by
// EncodeFrame and must be released exactly once after the bytes have been
// written (or abandoned) — the write queue takes ownership on enqueue.
type EncodedFrame struct {
	enc  *encoder // pooled; enc.buf = length prefix + header [+ body]
	body []byte   // shared pre-encoded body, nil when inlined in enc.buf
}

// EncodeFrame serializes m into a socket-ready frame. When m carries a
// large pre-encoded body the frame references it instead of copying, so a
// fan-out round's body bytes are serialized once and shared by every
// target's frame.
func EncodeFrame(m *Message) (*EncodedFrame, error) {
	e := getEncoder()
	e.u32(0) // length prefix, patched below
	e.header(m)
	f := &EncodedFrame{enc: e}
	switch {
	case m.Pre == nil:
		e.body(m)
	case len(m.Pre.body) <= inlineBody:
		e.buf = append(e.buf, m.Pre.body...)
	default:
		f.body = m.Pre.body
	}
	payload := len(e.buf) - 4 + len(f.body)
	if payload > maxFrame {
		f.Release()
		return nil, fmt.Errorf("wire: message too large (%d bytes)", payload)
	}
	binary.LittleEndian.PutUint32(e.buf[:4], uint32(payload))
	return f, nil
}

// Len returns the total frame size in bytes (length prefix included).
func (f *EncodedFrame) Len() int { return len(f.enc.buf) + len(f.body) }

// Segments returns the frame's byte segments in write order: one segment
// for a self-contained frame, two when a large shared body rides behind
// the header. The segments alias internal buffers — valid until Release.
func (f *EncodedFrame) Segments() [][]byte {
	if f.body == nil {
		return [][]byte{f.enc.buf}
	}
	return [][]byte{f.enc.buf, f.body}
}

// WriteTo writes the whole frame to w.
func (f *EncodedFrame) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(f.enc.buf)
	total := int64(n)
	if err != nil || f.body == nil {
		return total, err
	}
	n, err = w.Write(f.body)
	return total + int64(n), err
}

// Release returns the frame's pooled header buffer. The frame (and any
// Segments slices taken from it) must not be used afterwards.
func (f *EncodedFrame) Release() {
	if f.enc != nil {
		putEncoder(f.enc)
		f.enc = nil
	}
	f.body = nil
}

// frameReaderBuf is the FrameReader's stream buffer size: large enough
// that a burst of small frames (the group-commit write path batches them)
// costs one read syscall, small enough to be cheap per connection.
const frameReaderBuf = 32 << 10

// FrameReader reads length-prefixed messages from a byte stream through
// a buffered reader and a reusable payload scratch, so a steady state of
// small frames costs amortized read syscalls and no per-frame payload
// allocation. Decode copies every string and byte slice it returns, so
// reusing the scratch across frames is safe. Not safe for concurrent use.
type FrameReader struct {
	br      *bufio.Reader
	scratch []byte
}

// NewFrameReader wraps r for buffered frame reads.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, frameReaderBuf)}
}

// Buffered reports how many stream bytes are already buffered: non-zero
// means the next Read will not block on the underlying reader. The
// transport read loop uses it to hold reply flushes while a request
// burst is still draining (cork), so pipelined replies batch.
func (fr *FrameReader) Buffered() int { return fr.br.Buffered() }

// Read reads and decodes the next frame.
func (fr *FrameReader) Read() (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.br, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > maxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload := fr.payload(n)
	if _, err := io.ReadFull(fr.br, payload); err != nil {
		return nil, err
	}
	return Decode(payload)
}

// payload returns an n-byte buffer, reusing the scratch when it fits. An
// occasional huge frame gets a one-off allocation instead of pinning a
// huge scratch for the connection's lifetime.
func (fr *FrameReader) payload(n int) []byte {
	if n > maxPooledBuf {
		return make([]byte, n)
	}
	if cap(fr.scratch) < n {
		fr.scratch = make([]byte, n)
	}
	return fr.scratch[:n]
}
