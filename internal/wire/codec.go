package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/vclock"
)

// The binary format is little-endian with length-prefixed strings and byte
// slices. Field presence is driven entirely by the message Type where
// possible and by explicit presence bytes for optional payloads (Props,
// Img), so the encoding stays self-describing enough for fuzzing while
// remaining compact. A message on a stream is framed by a u32 length.

const (
	// maxFrame bounds a single framed message (16 MiB) as a defense
	// against corrupted length prefixes.
	maxFrame = 16 << 20
	// codecVersion is bumped on incompatible format changes.
	// v2 appended the Blob payload (routed/migration traffic).
	codecVersion = 2
)

type encoder struct{ buf []byte }

// encoders pools encode scratch buffers: the hot path (every Call on every
// transport) serializes into a recycled buffer and copies out the exact
// result, instead of growing a fresh slice per message.
var encoders = sync.Pool{
	New: func() any { return &encoder{buf: make([]byte, 0, 512)} },
}

// maxPooledBuf caps the scratch we keep: an occasional huge image must not
// pin its buffer in the pool forever.
const maxPooledBuf = 1 << 20

func getEncoder() *encoder {
	e := encoders.Get().(*encoder)
	e.buf = e.buf[:0]
	return e
}

func putEncoder(e *encoder) {
	if cap(e.buf) <= maxPooledBuf {
		encoders.Put(e)
	}
}

func (e *encoder) u8(v uint8) { e.buf = append(e.buf, v) }
func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) bytes(b []byte) {
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: truncated message reading %s at offset %d", what, d.off)
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail("u8")
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) bool() bool { return d.u8() != 0 }

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil || d.off+int(n) > len(d.buf) {
		d.fail("string")
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil || d.off+int(n) > len(d.buf) {
		d.fail("bytes")
		return nil
	}
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:d.off+int(n)])
	d.off += int(n)
	return b
}

// Encode serializes a message to a fresh byte slice (without framing).
// The result is the caller's to keep — encoding scratch is pooled
// internally.
func Encode(m *Message) []byte {
	e := getEncoder()
	e.message(m)
	out := make([]byte, len(e.buf))
	copy(out, e.buf)
	putEncoder(e)
	return out
}

func (e *encoder) message(m *Message) {
	e.header(m)
	if m.Pre != nil {
		e.buf = append(e.buf, m.Pre.body...)
		return
	}
	e.body(m)
}

// header serializes the per-link fields: the ones a fan-out round stamps
// freshly for every target (Type, Seq, From, View) plus the codec version.
// header followed by body is byte-identical to the pre-split encoding.
func (e *encoder) header(m *Message) {
	e.u8(codecVersion)
	e.u8(uint8(m.Type))
	e.u64(m.Seq)
	e.str(m.From)
	e.str(m.View)
}

// body serializes everything after the header — the shareable part a
// Preencode captures once per round.
func (e *encoder) body(m *Message) {
	e.u8(uint8(m.Mode))
	e.u8(uint8(m.Op))
	e.u64(uint64(m.Since))
	e.u64(uint64(m.Version))
	e.u32(m.Ops)
	// Props: presence + textual form (round-trips exactly; see property
	// package tests).
	if m.Props.IsEmpty() {
		e.bool(false)
	} else {
		e.bool(true)
		e.str(m.Props.String())
	}
	e.str(m.Trig.Push)
	e.str(m.Trig.Pull)
	e.str(m.Trig.Validity)
	if m.Img == nil {
		e.bool(false)
	} else {
		e.bool(true)
		encodeImage(e, m.Img)
	}
	e.bytes(m.Blob)
	e.str(m.Err)
}

func encodeImage(e *encoder, im *image.Image) {
	if im.Props.IsEmpty() {
		e.bool(false)
	} else {
		e.bool(true)
		e.str(im.Props.String())
	}
	e.u64(uint64(im.Version))
	e.u32(uint32(im.Len()))
	for _, k := range im.Keys() {
		ent := im.Entries[k]
		e.str(ent.Key)
		e.bytes(ent.Value)
		e.u64(uint64(ent.Version))
		e.str(ent.Writer)
		e.bool(ent.Deleted)
	}
}

// Decode parses a message produced by Encode.
func Decode(b []byte) (*Message, error) {
	d := &decoder{buf: b}
	ver := d.u8()
	if d.err == nil && ver != codecVersion {
		return nil, fmt.Errorf("wire: unsupported codec version %d", ver)
	}
	m := &Message{}
	m.Type = Type(d.u8())
	m.Seq = d.u64()
	m.From = d.str()
	m.View = d.str()
	m.Mode = Mode(d.u8())
	m.Op = OpClass(d.u8())
	m.Since = vclock.Version(d.u64())
	m.Version = vclock.Version(d.u64())
	m.Ops = d.u32()
	if d.bool() {
		txt := d.str()
		if d.err == nil {
			props, err := property.ParseSet(txt)
			if err != nil {
				return nil, fmt.Errorf("wire: bad props payload: %w", err)
			}
			m.Props = props
		}
	}
	m.Trig.Push = d.str()
	m.Trig.Pull = d.str()
	m.Trig.Validity = d.str()
	if d.bool() {
		im, err := decodeImage(d)
		if err != nil {
			return nil, err
		}
		m.Img = im
	}
	m.Blob = d.bytes()
	m.Err = d.str()
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("wire: %d trailing bytes after message", len(b)-d.off)
	}
	return m, nil
}

func decodeImage(d *decoder) (*image.Image, error) {
	var props property.Set
	if d.bool() {
		txt := d.str()
		if d.err == nil {
			p, err := property.ParseSet(txt)
			if err != nil {
				return nil, fmt.Errorf("wire: bad image props: %w", err)
			}
			props = p
		}
	}
	im := image.New(props)
	im.Version = vclock.Version(d.u64())
	n := d.u32()
	if d.err != nil {
		return nil, d.err
	}
	if int(n) > maxFrame/8 {
		return nil, fmt.Errorf("wire: implausible entry count %d", n)
	}
	for i := uint32(0); i < n; i++ {
		var ent image.Entry
		ent.Key = d.str()
		ent.Value = d.bytes()
		ent.Version = vclock.Version(d.u64())
		ent.Writer = d.str()
		ent.Deleted = d.bool()
		if d.err != nil {
			return nil, d.err
		}
		im.Put(ent)
	}
	return im, nil
}

// WriteFrame writes one length-prefixed message to w. It encodes into a
// pooled buffer with the length prefix in place, so a frame costs one
// Write and no per-message allocation.
func WriteFrame(w io.Writer, m *Message) error {
	e := getEncoder()
	defer putEncoder(e)
	e.u32(0) // length prefix, patched below
	e.message(m)
	payload := len(e.buf) - 4
	if payload > maxFrame {
		return fmt.Errorf("wire: message too large (%d bytes)", payload)
	}
	binary.LittleEndian.PutUint32(e.buf[:4], uint32(payload))
	_, err := w.Write(e.buf)
	return err
}

// ReadFrame reads one length-prefixed message from r.
func ReadFrame(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return Decode(payload)
}
