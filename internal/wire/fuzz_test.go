package wire

import (
	"bytes"
	"testing"

	"flecc/internal/image"
	"flecc/internal/property"
)

// seedCorpus returns one encoded message per protocol Type (plus a few
// interesting shapes: empty, image-bearing, blob-bearing, split
// header/body via Preencode, truncated, and version-corrupted), seeding
// both FuzzDecode and the deterministic no-panic sweep.
func seedCorpus() [][]byte {
	img := image.New(property.MustSet("Flights={100..102}"))
	img.Put(image.Entry{Key: "f/100", Value: []byte("seats=3"), Version: 2, Writer: "a1"})
	img.Version = 2

	perType := []*Message{
		{Type: TRegister, From: "a1", View: "a1", Mode: Strong,
			Props: property.MustSet("Flights={100..102}"),
			Trig:  Triggers{Push: "t > 5", Pull: "every(10)", Validity: "staleness < 3"}},
		{Type: TUnregister, From: "a1"},
		{Type: TInit, From: "a1"},
		{Type: TPull, From: "a1", Since: 7, Op: OpRead},
		{Type: TPush, From: "a1", Img: img, Ops: 4},
		{Type: TAcquire, From: "a1", Op: OpWrite},
		{Type: TRelease, From: "a1"},
		{Type: TSetMode, From: "a1", Mode: Weak},
		{Type: TSetProps, From: "a1", Props: property.MustSet("Seats=[0,400]")},
		{Type: TInvalidate, View: "a2"},
		{Type: TUpdate, View: "a2", Img: img, Version: 9},
		{Type: TAck, Seq: 3, From: "dm", Version: 9},
		{Type: TImage, Seq: 4, From: "dm", Img: img, Version: 2},
		{Type: TErr, Seq: 5, From: "dm", Err: "view not registered"},
		{Type: TRouted, View: "a1", Blob: Encode(&Message{Type: TPull, From: "a1"})},
		{Type: TMigrateTake, Blob: []byte("a1\x00a2")},
		{Type: TMigrateApply, Blob: []byte{1, 2, 3}},
		{Type: THello, From: "a1"},
		{Type: THelloAck, Seq: 1, From: "dm"},
		{Type: TReplicate, From: "dm!s0", Blob: []byte{4, 5, 6}},
		{Type: TReplAck, Seq: 2, From: "dm!s0r", Version: 11},
	}
	var seeds [][]byte
	for _, m := range perType {
		seeds = append(seeds, Encode(m))
	}
	// Split header/body frames: byte-identical to the plain encoding by
	// construction, but exercise the Pre path used by fan-out rounds.
	upd := &Message{Type: TUpdate, View: "a2", Img: img, Version: 9}
	upd.Pre = Preencode(upd)
	seeds = append(seeds, Encode(upd))
	// Degenerate shapes.
	full := Encode(sampleMessage())
	seeds = append(seeds,
		nil,
		[]byte{codecVersion},
		full[:len(full)/2],                   // truncated mid-message
		append([]byte{99}, full[1:]...),      // bad codec version
		append(bytes.Clone(full), 0xFF),      // trailing garbage
		bytes.Repeat([]byte{codecVersion}, 64),
	)
	return seeds
}

// FuzzDecode asserts Decode never panics on arbitrary input, and that any
// input it accepts re-encodes and re-decodes stably (decode∘encode is an
// identity on the decoded form).
func FuzzDecode(f *testing.F) {
	for _, seed := range seedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		if m.Pre != nil {
			t.Fatal("Decode must leave Pre nil: it is transport metadata")
		}
		b := Encode(m)
		m2, err := Decode(b)
		if err != nil {
			t.Fatalf("re-decode of accepted input failed: %v", err)
		}
		if !messagesEqual(m, m2) {
			t.Fatal("decode∘encode is not stable")
		}
	})
}

func TestDecodeSeedCorpusNoPanic(t *testing.T) {
	for _, seed := range seedCorpus() {
		_, _ = Decode(seed) // must not panic
	}
}
