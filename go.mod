module flecc

go 1.22
