// Command fleccspec validates a PSF declarative specification and prints
// the deployment plan the planning module produces for it — the views to
// deploy (with modes), the encryptor pairs to insert, and the served
// latency per client. It also runs the plan checker as a safety net.
//
// Usage:
//
//	fleccspec app.psf
//	fleccspec -            # read the spec from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"flecc/internal/psf"
)

func main() {
	normalize := flag.Bool("normalize", false, "print the normalized spec instead of the plan")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fleccspec [-normalize] <spec-file | ->")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *normalize); err != nil {
		fmt.Fprintln(os.Stderr, "fleccspec:", err)
		os.Exit(1)
	}
}

func run(path string, normalize bool) error {
	var text []byte
	var err error
	if path == "-" {
		text, err = io.ReadAll(os.Stdin)
	} else {
		text, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	spec, err := psf.ParseSpec(string(text))
	if err != nil {
		return err
	}
	if normalize {
		fmt.Print(psf.Format(spec))
		return nil
	}
	fmt.Printf("spec OK: %d components, %d nodes, %d links, %d clients\n",
		len(spec.Components), len(spec.Nodes), len(spec.Links), len(spec.Clients))

	plan, err := psf.PlanDeployment(spec)
	if err != nil {
		return err
	}
	fmt.Println("\nplan:")
	fmt.Print(plan)
	fmt.Println("\nserved latency per client:")
	for _, cl := range spec.Clients {
		budget := "unbounded"
		if cl.QoS.MaxLatency > 0 {
			budget = fmt.Sprintf("%dms", cl.QoS.MaxLatency)
		}
		fmt.Printf("  %-12s %3dms (budget %s)\n", cl.Name, plan.PathLatency[cl.Name], budget)
	}
	if err := psf.CheckPlan(spec, plan); err != nil {
		return fmt.Errorf("plan check FAILED: %w", err)
	}
	fmt.Println("\nplan check: OK (all QoS satisfied)")
	return nil
}
