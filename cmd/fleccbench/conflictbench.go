package main

// The conflict experiment (E16): throughput of the registry's indexed
// conflict engine against the brute-force pairwise scan it replaced, at
// 1k/10k/100k registered views. Two workloads:
//
//   - uniform: every view holds one narrow interval drawn uniformly from
//     the property space, tuned so a conflict query matches ~1% of the
//     table — the "many small independent conflict groups" regime.
//   - skew: every 20th view shares one hot property (one big contested
//     conflict group) while the rest sit on disjoint cold points — the
//     flash-crowd regime the router's conflict-affinity placement feeds.
//
// Measured per size and workload: ConflictingWith latency (with the
// observed matches/op) and registration throughput, indexed vs a
// brute-force reference that performs the old per-candidate pairwise
// Set.Overlaps scan. `-json` writes BENCH_conflict.json for the
// benchmark trajectory; `-agents N` caps the largest table size (CI runs
// the 1k row only).

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"

	"flecc/internal/property"
	"flecc/internal/registry"
)

// conflictWorkload names a property-placement shape.
type conflictWorkload struct {
	name  string
	props func(rng *rand.Rand, i int) property.Set
}

func conflictWorkloads() []conflictWorkload {
	return []conflictWorkload{
		{"uniform", func(rng *rand.Rand, _ int) property.Set {
			lo := rng.Float64() * 100
			return property.NewSet(property.New("K", property.Interval(lo, lo+0.5)))
		}},
		{"skew", func(rng *rand.Rand, i int) property.Set {
			if i%20 == 0 {
				return property.NewSet(property.New("H", property.Interval(0, 1)))
			}
			return property.NewSet(property.New("K", property.Point(float64(i))))
		}},
	}
}

// bruteTable is the retained reference: the pre-index conflict scan — a
// pairwise property-set intersection against every registered view.
type bruteTable struct {
	props map[string]property.Set
	names []string
}

func newBruteTable() *bruteTable { return &bruteTable{props: map[string]property.Set{}} }

func (b *bruteTable) register(name string, ps property.Set) {
	b.props[name] = ps
	b.names = append(b.names, name)
}

func (b *bruteTable) conflictingWith(name string) []string {
	self, ok := b.props[name]
	if !ok {
		return nil
	}
	var out []string
	for n, ps := range b.props {
		if n == name {
			continue
		}
		if self.Overlaps(ps) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

func conflictViewName(i int) string { return fmt.Sprintf("view-%06d", i) }

// runConflict executes the conflict benchmark set; sizes above maxViews
// are skipped (0 = run all).
func runConflict(jsonOut string, maxViews int) error {
	sizes := []int{1000, 10000, 100000}
	var rows []wireBenchResult

	for _, w := range conflictWorkloads() {
		for _, n := range sizes {
			if maxViews > 0 && n > maxViews {
				continue
			}
			rows = append(rows, conflictQueryRows(w, n)...)
			rows = append(rows, conflictRegisterRows(w, n)...)
		}
	}

	report := wireBenchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Results:   rows,
	}
	if jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", jsonOut, len(report.Results))
		return nil
	}
	fmt.Printf("%-44s %14s %12s %12s\n", "benchmark", "ns/op", "allocs/op", "B/op")
	for _, r := range report.Results {
		fmt.Printf("%-44s %14.1f %12d %12d", r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		for _, k := range sortedExtraKeys(r.Extra) {
			fmt.Printf("  %s=%.2f", k, r.Extra[k])
		}
		fmt.Println()
	}
	return nil
}

func sortedExtraKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// conflictQueryRows measures ConflictingWith latency at one table size,
// indexed (the real registry) vs brute (the reference scan).
func conflictQueryRows(w conflictWorkload, n int) []wireBenchResult {
	reg := registry.New()
	brute := newBruteTable()
	rng := rand.New(rand.NewSource(42))
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = conflictViewName(i)
		ps := w.props(rng, i)
		if err := reg.Register(names[i], ps); err != nil {
			panic(err)
		}
		reg.SetActive(names[i], true)
		brute.register(names[i], ps)
	}

	var rows []wireBenchResult
	var matches int
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		matches = 0
		for i := 0; i < b.N; i++ {
			matches += len(reg.ConflictingWith(names[i%n], true))
		}
	})
	indexedNs := float64(res.T.Nanoseconds()) / float64(res.N)
	rows = append(rows, wireBenchResult{
		Name: fmt.Sprintf("conflict_query/%s/n%d/indexed", w.name, n),
		N:    res.N, NsPerOp: indexedNs,
		AllocsPerOp: res.AllocsPerOp(), BytesPerOp: res.AllocedBytesPerOp(),
		Extra: map[string]float64{"matches_per_op": float64(matches) / float64(res.N)},
	})

	res = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		matches = 0
		for i := 0; i < b.N; i++ {
			matches += len(brute.conflictingWith(names[i%n]))
		}
	})
	bruteNs := float64(res.T.Nanoseconds()) / float64(res.N)
	extra := map[string]float64{"matches_per_op": float64(matches) / float64(res.N)}
	if indexedNs > 0 {
		extra["speedup_vs_indexed"] = bruteNs / indexedNs
	}
	rows = append(rows, wireBenchResult{
		Name: fmt.Sprintf("conflict_query/%s/n%d/brute", w.name, n),
		N:    res.N, NsPerOp: bruteNs,
		AllocsPerOp: res.AllocsPerOp(), BytesPerOp: res.AllocedBytesPerOp(),
		Extra: extra,
	})
	return rows
}

// conflictRegisterRows measures registration throughput into a table of
// the given size: the index pays treap/posting maintenance per register,
// the brute table is a bare map insert (its cost comes due at query
// time). Both build the full n-view table per measurement pass.
func conflictRegisterRows(w conflictWorkload, n int) []wireBenchResult {
	row := func(mode string, build func() func(i int, ps property.Set)) wireBenchResult {
		var rng *rand.Rand
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i += n {
				b.StopTimer()
				rng = rand.New(rand.NewSource(42))
				add := build()
				b.StartTimer()
				for j := 0; j < n && i+j < b.N; j++ {
					add(j, w.props(rng, j))
				}
			}
		})
		ns := float64(res.T.Nanoseconds()) / float64(res.N)
		extra := map[string]float64{}
		if ns > 0 {
			extra["views_per_sec"] = 1e9 / ns
		}
		return wireBenchResult{
			Name: fmt.Sprintf("register/%s/n%d/%s", w.name, n, mode),
			N:    res.N, NsPerOp: ns,
			AllocsPerOp: res.AllocsPerOp(), BytesPerOp: res.AllocedBytesPerOp(),
			Extra: extra,
		}
	}
	return []wireBenchResult{
		row("indexed", func() func(int, property.Set) {
			reg := registry.New()
			return func(i int, ps property.Set) {
				if err := reg.Register(conflictViewName(i), ps); err != nil {
					panic(err)
				}
			}
		}),
		row("brute", func() func(int, property.Set) {
			t := newBruteTable()
			return func(i int, ps property.Set) { t.register(conflictViewName(i), ps) }
		}),
	}
}
