package main

// The scale experiment (E18): commit throughput of the conflict-group-
// striped directory (Options.Lanes) against the global-lock baseline.
// G disjoint conflict groups × W writers per group hammer one directory
// manager with conflicting pushes over the in-process transport; each
// group's views share a property range no other group touches, so the
// lane table routes them to independent execution lanes. The striped
// rows report speedup_vs_global against the serial run at the same G.
//
// The serial commit path pays a full primary Extract under the store
// write lock for every conflicting commit (O(total keys)); the striped
// path extracts just the conflicting keys, outside every lock — which is
// why throughput scales with the number of disjoint groups even on a
// single core.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"flecc/internal/directory"
	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// scaleKV is benchKV plus keyed extraction, so the striped commit path can
// resolve conflicts from just the conflicting keys.
type scaleKV struct {
	benchKV
}

func newScaleKV() *scaleKV { return &scaleKV{benchKV{data: map[string][]byte{}}} }

func (c *scaleKV) ExtractKeys(props property.Set, keys []string) (*image.Image, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	img := image.New(props.Clone())
	for _, k := range keys {
		if v, ok := c.data[k]; ok {
			img.Put(image.Entry{Key: k, Value: v})
		}
	}
	return img, nil
}

// incomingWins is the bench resolver: the pushed value always wins, but
// its presence forces both commit paths through conflict resolution —
// the serial path's full extract vs the striped path's keyed extract.
func incomingWins(c image.Conflict) (image.Entry, error) {
	return c.Theirs, nil
}

const (
	scaleKeysPerGroup = 192 // seeded keys per conflict group
	scaleWindow       = 8   // keys per pushed delta
)

// scaleRun drives one configuration and returns total commits and the
// wall-clock the pushes took.
func scaleRun(groups, writersPerGroup, opsPerWriter, lanes int) (int, time.Duration, error) {
	net := transport.NewInproc()
	dm, err := directory.New("dm", newScaleKV(), vclock.NewReal(), net, directory.Options{
		Resolver: incomingWins,
		Lanes:    lanes,
	})
	if err != nil {
		return 0, 0, err
	}
	defer dm.Close()

	// Register every writer; group g's views all share property P{g} and
	// no other group's, so groups are mutually disjoint conflict groups.
	type writer struct {
		name  string
		ep    transport.Endpoint
		props property.Set
		group int
	}
	var ws []*writer
	for g := 0; g < groups; g++ {
		props := property.MustSet(fmt.Sprintf("P%d={0..9}", g))
		for w := 0; w < writersPerGroup; w++ {
			name := fmt.Sprintf("g%dw%d", g, w)
			ep, err := net.Attach(name, func(req *wire.Message) *wire.Message {
				return &wire.Message{Type: wire.TAck}
			})
			if err != nil {
				return 0, 0, err
			}
			reply, err := ep.Call("dm", &wire.Message{
				Type: wire.TRegister, From: name, Props: props, Mode: wire.Weak,
			})
			if err != nil {
				return 0, 0, err
			}
			if reply.Type == wire.TErr {
				return 0, 0, fmt.Errorf("register %s: %s", name, reply.Err)
			}
			ws = append(ws, &writer{name: name, ep: ep, props: props, group: g})
		}
	}

	// Seed each group's key space from the primary (writer ""), so every
	// push against base version 0 is a detected conflict and exercises
	// the resolution path.
	for g := 0; g < groups; g++ {
		props := property.MustSet(fmt.Sprintf("P%d={0..9}", g))
		delta := image.New(props.Clone())
		for k := 0; k < scaleKeysPerGroup; k++ {
			delta.Put(image.Entry{Key: fmt.Sprintf("g%d:k%03d", g, k), Value: []byte("seed")})
		}
		if _, err := dm.CommitLocal(delta, 1); err != nil {
			return 0, 0, err
		}
	}

	push := func(w *writer, i int) error {
		delta := image.New(w.props.Clone())
		base := (i * scaleWindow) % scaleKeysPerGroup
		for k := 0; k < scaleWindow; k++ {
			delta.Put(image.Entry{
				Key:   fmt.Sprintf("g%d:k%03d", w.group, (base+k)%scaleKeysPerGroup),
				Value: []byte("v"),
			})
		}
		reply, err := w.ep.Call("dm", &wire.Message{Type: wire.TPush, From: w.name, Img: delta, Ops: 1})
		if err != nil {
			return err
		}
		if reply.Type == wire.TErr {
			return fmt.Errorf("push %s: %s", w.name, reply.Err)
		}
		return nil
	}

	// Warm the lane table and the caches outside the timed window.
	for _, w := range ws {
		if err := push(w, 0); err != nil {
			return 0, 0, err
		}
	}

	errs := make([]error, len(ws))
	var wg sync.WaitGroup
	start := time.Now()
	for wi, w := range ws {
		wg.Add(1)
		go func(wi int, w *writer) {
			defer wg.Done()
			for i := 0; i < opsPerWriter; i++ {
				if err := push(w, i+1); err != nil {
					errs[wi] = err
					return
				}
			}
		}(wi, w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	return len(ws) * opsPerWriter, elapsed, nil
}

func runScaleBenchmarks(agents, ops int) ([]wireBenchResult, error) {
	writersPerGroup := 2
	if agents > 0 {
		writersPerGroup = agents
	}
	opsPerWriter := 150
	if ops > 0 {
		opsPerWriter = ops
	}

	var out []wireBenchResult
	for _, groups := range []int{1, 2, 4, 8} {
		var serialCPS float64
		for _, mode := range []struct {
			label string
			lanes int
		}{
			{"global", 0},
			{"striped", 8},
		} {
			commits, elapsed, err := scaleRun(groups, writersPerGroup, opsPerWriter, mode.lanes)
			if err != nil {
				return nil, fmt.Errorf("scale g=%d %s: %w", groups, mode.label, err)
			}
			cps := float64(commits) / elapsed.Seconds()
			extra := map[string]float64{
				"groups":          float64(groups),
				"writers":         float64(groups * writersPerGroup),
				"commits_per_sec": cps,
			}
			if mode.lanes == 0 {
				serialCPS = cps
			} else if serialCPS > 0 {
				extra["speedup_vs_global"] = cps / serialCPS
			}
			out = append(out, wireBenchResult{
				Name:    fmt.Sprintf("scale_commit/%s_g%d", mode.label, groups),
				N:       commits,
				NsPerOp: float64(elapsed.Nanoseconds()) / float64(commits),
				Extra:   extra,
			})
		}
	}
	return out, nil
}

// runScale executes the scale benchmark set; with jsonOut non-empty the
// report is written there as JSON (BENCH_scale.json by default), otherwise
// a text table goes to stdout.
func runScale(jsonOut string, agents, ops int) error {
	rows, err := runScaleBenchmarks(agents, ops)
	if err != nil {
		return err
	}
	report := wireBenchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Results:   rows,
	}
	if jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", jsonOut, len(report.Results))
		return nil
	}
	fmt.Printf("%-26s %12s %16s %10s\n", "benchmark", "ns/commit", "commits/s", "speedup")
	for _, r := range report.Results {
		speed := ""
		if s, ok := r.Extra["speedup_vs_global"]; ok {
			speed = fmt.Sprintf("%.2fx", s)
		}
		fmt.Printf("%-26s %12.0f %16.0f %10s\n", r.Name, r.NsPerOp, r.Extra["commits_per_sec"], speed)
	}
	return nil
}
