// Command fleccbench regenerates the paper's evaluation figures and the
// repository's ablations on the deterministic simulated LAN, printing each
// as a text table.
//
// Usage:
//
//	fleccbench -exp fig4                # Figure 4 (efficiency)
//	fleccbench -exp fig5                # Figure 5 (adaptability)
//	fleccbench -exp fig6                # Figure 6 (flexibility)
//	fleccbench -exp ablation-conflict   # E5: conflict-decision policy
//	fleccbench -exp ablation-rw         # E6: read/write semantics
//	fleccbench -exp ablation-peer       # E7: centralized vs decentralized
//	fleccbench -exp wire                # E13: wire-path micro-benchmarks
//	fleccbench -exp conflict            # E16: conflict-index micro-benchmarks
//	fleccbench -exp ha                  # E17: hot-standby replication micro-benchmarks
//	fleccbench -exp scale               # E18: conflict-group-striped commit throughput
//	fleccbench -exp all                 # everything
//
// Figure parameters can be scaled with -agents/-ops; the defaults are the
// paper's settings. The wire and conflict experiments support -json, which
// writes a machine-readable report (default BENCH_wire.json resp.
// BENCH_conflict.json, override with -out) instead of the text table — the
// format CI's benchmark trajectory diffs. For the conflict experiment,
// -agents caps the largest view-table size (CI smoke uses -agents 1000).
package main

import (
	"flag"
	"fmt"
	"os"

	"flecc/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: fig4, fig5, fig6, ablation-conflict, ablation-rw, ablation-peer, ablation-propagation, buyermix, wire, conflict, ha, scale, all")
		agents  = flag.Int("agents", 0, "override agent count (0 = paper default); for -exp conflict, caps the largest view-table size")
		ops     = flag.Int("ops", 0, "override per-agent/per-phase op count (0 = paper default)")
		check   = flag.Bool("check", true, "verify the qualitative shape of each result")
		jsonOut = flag.Bool("json", false, "wire/conflict experiments: write a JSON report instead of a text table")
		out     = flag.String("out", "", "wire/conflict experiments: JSON report path (with -json; default BENCH_wire.json / BENCH_conflict.json)")
	)
	flag.Parse()
	if err := run(*exp, *agents, *ops, *check, *jsonOut, *out); err != nil {
		fmt.Fprintln(os.Stderr, "fleccbench:", err)
		os.Exit(1)
	}
}

// benchDest resolves the JSON report path for a benchmark experiment:
// empty when -json is off, the per-experiment default when -out is unset.
func benchDest(jsonOut bool, out, def string) string {
	if !jsonOut {
		return ""
	}
	if out == "" {
		return def
	}
	return out
}

func run(exp string, agents, ops int, check, jsonOut bool, out string) error {
	switch exp {
	case "fig4":
		return runFig4(agents, ops, check)
	case "fig5":
		return runFig5(agents, ops, check)
	case "fig6":
		return runFig6(agents, ops, check)
	case "ablation-conflict":
		return runAblationConflict(check)
	case "ablation-rw":
		return runAblationRW(check)
	case "ablation-peer":
		return runAblationPeer(check)
	case "buyermix":
		return runBuyerMix(check)
	case "ablation-propagation":
		return runPropagation(check)
	case "wire":
		return runWire(benchDest(jsonOut, out, "BENCH_wire.json"))
	case "conflict":
		return runConflict(benchDest(jsonOut, out, "BENCH_conflict.json"), agents)
	case "ha":
		return runHA(benchDest(jsonOut, out, "BENCH_ha.json"))
	case "scale":
		return runScale(benchDest(jsonOut, out, "BENCH_scale.json"), agents, ops)
	case "all":
		for _, e := range []string{"fig4", "fig5", "fig6", "ablation-conflict", "ablation-rw", "ablation-peer", "ablation-propagation", "buyermix", "wire", "conflict", "ha", "scale"} {
			if err := run(e, agents, ops, check, jsonOut, out); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func runFig4(agents, ops int, check bool) error {
	cfg := experiments.DefaultFig4()
	if agents > 0 {
		cfg.Agents = agents
		cfg.Groups = nil
		for g := agents / 10; g <= agents; g += agents / 10 {
			if g > 0 {
				cfg.Groups = append(cfg.Groups, g)
			}
		}
	}
	if ops > 0 {
		cfg.OpsPerAgent = ops
	}
	res, err := experiments.RunFig4(cfg)
	if err != nil {
		return err
	}
	if _, err := res.WriteTo(os.Stdout); err != nil {
		return err
	}
	if check {
		if err := res.CheckShape(); err != nil {
			return err
		}
		fmt.Println("shape: OK (time-sharing ≤ flecc ≤ multicast; flecc grows with conflict-group size)")
	}
	return nil
}

func runFig5(agents, ops int, check bool) error {
	cfg := experiments.DefaultFig5()
	if agents > 0 {
		cfg.Agents = agents
	}
	if ops > 0 {
		cfg.OpsPerPhase = ops
	}
	res, err := experiments.RunFig5(cfg)
	if err != nil {
		return err
	}
	if _, err := res.WriteTo(os.Stdout); err != nil {
		return err
	}
	if check {
		if err := res.CheckShape(); err != nil {
			return err
		}
		fmt.Println("shape: OK (strong slower, strong always fresh, weak degrades)")
	}
	return nil
}

func runFig6(agents, ops int, check bool) error {
	cfg := experiments.DefaultFig6()
	if agents > 0 {
		cfg.Agents = agents
	}
	if ops > 0 {
		cfg.Ops = ops
	}
	res, err := experiments.RunFig6(cfg)
	if err != nil {
		return err
	}
	if _, err := res.WriteTo(os.Stdout); err != nil {
		return err
	}
	if check {
		if err := res.CheckShape(); err != nil {
			return err
		}
		fmt.Println("shape: OK (triggers: better quality, more messages)")
	}
	return nil
}

func runAblationConflict(check bool) error {
	res, err := experiments.RunAblationConflict(40, 10, 1)
	if err != nil {
		return err
	}
	if _, err := res.Table().WriteTo(os.Stdout); err != nil {
		return err
	}
	if check {
		if err := res.CheckShape(); err != nil {
			return err
		}
		fmt.Println("shape: OK (static == dynamic < worst-case)")
	}
	return nil
}

func runAblationRW(check bool) error {
	res, err := experiments.RunAblationRW(10, 5)
	if err != nil {
		return err
	}
	if _, err := res.Table().WriteTo(os.Stdout); err != nil {
		return err
	}
	if check {
		if err := res.CheckShape(); err != nil {
			return err
		}
		fmt.Println("shape: OK (read-aware strong browsing never invalidates)")
	}
	return nil
}

func runPropagation(check bool) error {
	res, err := experiments.RunPropagation(experiments.DefaultPropagation())
	if err != nil {
		return err
	}
	if _, err := res.Table().WriteTo(os.Stdout); err != nil {
		return err
	}
	if check {
		if err := res.CheckShape(); err != nil {
			return err
		}
		fmt.Println("shape: OK (push cheap for rare writes, pull cheap for frequent writes)")
	}
	return nil
}

func runBuyerMix(check bool) error {
	res, err := experiments.RunBuyerMix(experiments.DefaultBuyerMix())
	if err != nil {
		return err
	}
	if _, err := res.Table().WriteTo(os.Stdout); err != nil {
		return err
	}
	if check {
		if err := res.CheckShape(); err != nil {
			return err
		}
		fmt.Println("shape: OK (adaptive browses cheap, strong never oversells, weak does)")
	}
	return nil
}

func runAblationPeer(check bool) error {
	res, err := experiments.RunAblationPeer([]int{2, 4, 8, 16, 32})
	if err != nil {
		return err
	}
	if _, err := res.Table().WriteTo(os.Stdout); err != nil {
		return err
	}
	if check {
		if err := res.CheckShape(); err != nil {
			return err
		}
		fmt.Println("shape: OK (decentralized pairings grow O(n²))")
	}
	return nil
}
