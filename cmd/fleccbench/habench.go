package main

// The ha experiment (E17): machine-readable micro-benchmarks of the
// hot-standby replication path. `fleccbench -exp ha -json` writes
// BENCH_ha.json with the commit-path overhead of semi-synchronous
// replication (inline and windowed-async sessions vs an unreplicated
// baseline) plus the standby bootstrap path (snapshot restore + image
// absorb) — the numbers behind the "replication lag" column of the HA
// story. Everything runs on the in-process transport so the rows measure
// protocol cost, not loopback TCP.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"flecc/internal/directory"
	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/vclock"
)

// benchKV is a minimal mutex-guarded codec for the HA benchmarks.
type benchKV struct {
	mu   sync.Mutex
	data map[string][]byte
}

func newBenchKV() *benchKV { return &benchKV{data: map[string][]byte{}} }

func (c *benchKV) Extract(props property.Set) (*image.Image, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	img := image.New(props.Clone())
	for k, v := range c.data {
		img.Put(image.Entry{Key: k, Value: v})
	}
	return img, nil
}

func (c *benchKV) Merge(img *image.Image, props property.Set) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range img.Entries {
		if e.Deleted {
			delete(c.data, k)
			continue
		}
		c.data[k] = e.Value
	}
	return nil
}

// haPair builds a primary + hot standby on one in-process transport with
// the given replication session config. The returned cleanup tears the
// whole pair down.
func haPair(cfg directory.ReplConfig) (*directory.Manager, *directory.Manager, func(), error) {
	net := transport.NewInproc()
	clock := vclock.NewReal()
	prim, err := directory.New("dm", newBenchKV(), clock, net, directory.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	sb, err := directory.New("dmr", newBenchKV(), clock, net, directory.Options{Standby: true})
	if err != nil {
		prim.Close()
		return nil, nil, nil, err
	}
	repl, err := prim.StartReplication(cfg, directory.ReplTarget{Name: "dmr"})
	if err != nil {
		sb.Close()
		prim.Close()
		return nil, nil, nil, err
	}
	cleanup := func() {
		repl.Close()
		sb.Close()
		prim.Close()
	}
	return prim, sb, cleanup, nil
}

// benchCommits measures CommitLocal (which barriers on replication when a
// session is attached) through the given manager.
func benchCommits(dm *directory.Manager) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			delta := image.New(property.NewSet())
			delta.Put(image.Entry{Key: fmt.Sprintf("k%d", i%64), Value: []byte("v")})
			if _, err := dm.CommitLocal(delta, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func haRow(name string, r testing.BenchmarkResult, extra map[string]float64) wireBenchResult {
	return wireBenchResult{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Extra:       extra,
	}
}

func runHABenchmarks() ([]wireBenchResult, error) {
	var out []wireBenchResult

	// Baseline: an unreplicated commit (no session, the barrier is free).
	net := transport.NewInproc()
	solo, err := directory.New("dm", newBenchKV(), vclock.NewReal(), net, directory.Options{})
	if err != nil {
		return nil, err
	}
	base := benchCommits(solo)
	solo.Close()
	baseNs := float64(base.T.Nanoseconds()) / float64(base.N)
	out = append(out, haRow("ha_commit/unreplicated", base, nil))

	// Semi-synchronous commit, inline session: the commit ships the batch
	// and waits for the standby's absorb on the caller's goroutine.
	overhead := func(r testing.BenchmarkResult) map[string]float64 {
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if baseNs <= 0 {
			return nil
		}
		return map[string]float64{"overhead_x": ns / baseNs}
	}
	prim, sb, cleanup, err := haPair(directory.ReplConfig{Inline: true})
	if err != nil {
		return nil, err
	}
	rInline := benchCommits(prim)
	if got, want := sb.CurrentVersion(), prim.CurrentVersion(); got != want {
		cleanup()
		return nil, fmt.Errorf("inline standby lagging: v%d vs v%d", got, want)
	}
	cleanup()
	out = append(out, haRow("ha_commit/semisync_inline", rInline, overhead(rInline)))

	// Semi-synchronous commit, async sender with a windowed pipeline: the
	// barrier overlaps with the sender goroutine shipping batches.
	prim, sb, cleanup, err = haPair(directory.ReplConfig{Window: 4, AckTimeout: 10 * time.Second})
	if err != nil {
		return nil, err
	}
	rAsync := benchCommits(prim)
	lag := float64(prim.CurrentVersion() - sb.CurrentVersion())
	cleanup()
	extra := overhead(rAsync)
	if extra == nil {
		extra = map[string]float64{}
	}
	// The barrier makes every acked commit standby-visible; a non-zero
	// value here would mean acked state only the primary had.
	extra["lag_after_last_ack"] = lag
	out = append(out, haRow("ha_commit/async_w4", rAsync, extra))

	// Standby bootstrap: restore a 1k-key snapshot and absorb the primary
	// image — the cold-start catch-up a fresh standby pays before the
	// stream goes incremental.
	seed := newBenchKV()
	st := directory.NewStore(seed, vclock.NewReal())
	for i := 0; i < 1024; i++ {
		delta := image.New(property.NewSet())
		delta.Put(image.Entry{Key: fmt.Sprintf("k%04d", i), Value: []byte("NYC|SFO|200|57|19900")})
		if _, _, _, err := st.Commit("v1", delta, 1); err != nil {
			return nil, err
		}
	}
	snap := st.Snapshot()
	img, err := st.Extract(property.NewSet(), 0)
	if err != nil {
		return nil, err
	}
	rBoot := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cold := directory.NewStore(newBenchKV(), vclock.NewReal())
			if err := cold.Restore(snap); err != nil {
				b.Fatal(err)
			}
			if err := cold.AbsorbImage(img); err != nil {
				b.Fatal(err)
			}
		}
	})
	out = append(out, haRow("ha_bootstrap/restore_absorb_1k", rBoot, map[string]float64{
		"keys": 1024,
	}))

	// Snapshot capture on a loaded primary: what the sender pays to open
	// a stream (or re-open one after a gap refusal).
	rCap := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if s := st.Snapshot(); s == nil {
				b.Fatal("nil snapshot")
			}
		}
	})
	out = append(out, haRow("ha_capture/snapshot_1k", rCap, nil))

	return out, nil
}

// runHA executes the HA benchmark set; with jsonOut non-empty the report
// is written there as JSON (BENCH_ha.json by default), otherwise a text
// table goes to stdout.
func runHA(jsonOut string) error {
	rows, err := runHABenchmarks()
	if err != nil {
		return err
	}
	report := wireBenchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Results:   rows,
	}
	if jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", jsonOut, len(report.Results))
		return nil
	}
	fmt.Printf("%-34s %12s %12s %12s\n", "benchmark", "ns/op", "allocs/op", "B/op")
	for _, r := range report.Results {
		fmt.Printf("%-34s %12.1f %12d %12d", r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		for k, v := range r.Extra {
			fmt.Printf("  %s=%.4f", k, v)
		}
		fmt.Println()
	}
	return nil
}
