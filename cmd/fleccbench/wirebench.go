package main

// The wire experiment: machine-readable micro-benchmarks of the coalesced
// wire path, seeding the repo's benchmark trajectory. `fleccbench -exp wire
// -json` writes BENCH_wire.json with ns/op, allocs/op, and bytes/op per
// benchmark, so CI (and humans) can diff runs with plain tooling instead of
// scraping `go test -bench` text.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// wireBenchResult is one benchmark row in BENCH_wire.json.
type wireBenchResult struct {
	Name       string  `json:"name"`
	N          int     `json:"n"`
	NsPerOp    float64 `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp int64   `json:"bytes_per_op"`
	// Extra carries benchmark-specific metrics (writes/frame for the
	// coalescing benchmark).
	Extra map[string]float64 `json:"extra,omitempty"`
}

type wireBenchReport struct {
	GoVersion string            `json:"go_version"`
	GOOS      string            `json:"goos"`
	GOARCH    string            `json:"goarch"`
	Results   []wireBenchResult `json:"results"`
}

func wireBenchMessage(entries int) *wire.Message {
	img := image.New(property.MustSet("Flights={100..139}"))
	for i := 0; i < entries; i++ {
		img.Put(image.Entry{
			Key:     fmt.Sprintf("flight/%03d", i),
			Value:   []byte("NYC|SFO|200|57|19900"),
			Version: vclock.Version(i),
			Writer:  "agent-042",
		})
	}
	img.Version = vclock.Version(entries)
	return &wire.Message{Type: wire.TPush, Seq: 42, From: "agent-042", View: "agent-042", Ops: 7, Img: img}
}

// repeatFrames replays one framed message forever (the read side of the
// round-trip benchmark).
type repeatFrames struct {
	b   []byte
	off int
}

func (r *repeatFrames) Read(p []byte) (int, error) {
	if r.off == len(r.b) {
		r.off = 0
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}

// frameBytes returns m framed for the stream.
func frameBytes(m *wire.Message) []byte {
	var sink appendSink
	if err := wire.WriteFrame(&sink, m); err != nil {
		panic(err)
	}
	return sink.b
}

type appendSink struct{ b []byte }

func (s *appendSink) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

// yieldSink counts writes and yields per call the way a real write syscall
// parks its goroutine — the window where concurrent senders coalesce.
type yieldSink struct {
	mu     sync.Mutex
	writes int64
}

func (s *yieldSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	s.writes++
	s.mu.Unlock()
	runtime.Gosched()
	return len(p), nil
}

// runWireBenchmarks runs the wire-path benchmark set programmatically via
// testing.Benchmark and returns the rows.
func runWireBenchmarks() []wireBenchResult {
	var out []wireBenchResult
	add := func(name string, extra map[string]float64, r testing.BenchmarkResult) {
		out = append(out, wireBenchResult{
			Name:        name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Extra:       extra,
		})
	}

	// Round trip: WriteFrame + buffered FrameReader.Read per op.
	for _, tc := range []struct {
		name    string
		entries int
	}{{"wire_round_trip/ack", 0}, {"wire_round_trip/push8", 8}, {"wire_round_trip/push128", 128}} {
		m := wireBenchMessage(tc.entries)
		if tc.entries == 0 {
			m = &wire.Message{Type: wire.TAck, Seq: 7, From: "dm", Version: 9}
		}
		framed := frameBytes(m)
		fr := wire.NewFrameReader(&repeatFrames{b: framed})
		add(tc.name, nil, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := wire.WriteFrame(io.Discard, m); err != nil {
					b.Fatal(err)
				}
				if _, err := fr.Read(); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// Encode-once fan-out: one 64-entry body to 8 targets, per-target
	// re-encode vs Preencode + header stamps.
	base := wireBenchMessage(64)
	base.Type = wire.TUpdate
	const targets = 8
	add("fanout_encode/per_target_x8", nil, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for t := 0; t < targets; t++ {
				m := *base
				m.View = "v"
				if err := wire.WriteFrame(io.Discard, &m); err != nil {
					b.Fatal(err)
				}
			}
		}
	}))
	add("fanout_encode/encode_once_x8", nil, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := *base
			m.Pre = wire.Preencode(&m)
			for t := 0; t < targets; t++ {
				mm := m
				mm.View = "v"
				if err := wire.WriteFrame(io.Discard, &mm); err != nil {
					b.Fatal(err)
				}
			}
		}
	}))

	// Coalesced writes: 8 concurrent senders on one yielding link. The
	// interesting number is writes/frame — the syscall ratio.
	const senders = 8
	sink := &yieldSink{}
	var frames int64
	res := testing.Benchmark(func(b *testing.B) {
		// Reset per testing.Benchmark calibration round so the final
		// round's counts line up.
		sink.mu.Lock()
		sink.writes = 0
		sink.mu.Unlock()
		q := transport.NewCoalescer(sink, nil)
		b.ReportAllocs()
		var wg sync.WaitGroup
		per := b.N/senders + 1
		frames = int64(senders * per)
		for s := 0; s < senders; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					m := &wire.Message{Type: wire.TAck, Seq: uint64(s*per + i), From: "bench"}
					if err := q.Send(m); err != nil {
						b.Error(err)
						return
					}
				}
			}(s)
		}
		wg.Wait()
	})
	sink.mu.Lock()
	writes := sink.writes
	sink.mu.Unlock()
	add("coalesced_writes/8senders", map[string]float64{
		"writes_per_frame": float64(writes) / float64(frames),
	}, res)

	// Pipeline window sweep (E15): one CM↔DM TCP loopback link, W
	// concurrent Seq-correlated requests in flight. The headline series is
	// ops/sec per window; window 64 should approach wire saturation (many
	// times the window-1 series, which pays a full RTT per op).
	for _, window := range []int{1, 8, 64} {
		r, err := runPipelineWindow(window)
		if err != nil {
			// Loopback TCP is unavailable (sandboxed run): report the row
			// with the error rather than aborting the whole experiment.
			fmt.Fprintf(os.Stderr, "fleccbench: pipeline_window/w%d skipped: %v\n", window, err)
			continue
		}
		opsPerSec := 0.0
		if r.NsPerOp > 0 {
			opsPerSec = 1e9 / r.NsPerOp
		}
		r.Extra = map[string]float64{"ops_per_sec": opsPerSec}
		out = append(out, r)
	}

	return out
}

// runPipelineWindow measures single-connection throughput on a loopback
// TCP link at one in-flight window: a pipelined issuer keeps the window
// full with CallAsync while a collector retires completions in order.
func runPipelineWindow(window int) (wireBenchResult, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return wireBenchResult{}, err
	}
	srv := transport.Serve(ln, "dm", func(req *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TAck, Version: req.Since}
	}, 30*time.Second)
	defer srv.Close()
	c, err := transport.Dial(ln.Addr().String(), "cm1", func(req *wire.Message) *wire.Message {
		return &wire.Message{Type: wire.TErr, Err: "bench client serves no requests"}
	}, 30*time.Second)
	if err != nil {
		return wireBenchResult{}, err
	}
	defer c.Close()
	c.SetWindow(window)

	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		calls := make(chan *transport.Call, 2*window)
		done := make(chan error, 1)
		go func() {
			var first error
			for call := range calls {
				if _, err := call.Wait(); err != nil && first == nil {
					first = err
				}
			}
			done <- first
		}()
		for i := 0; i < b.N; i++ {
			calls <- c.CallAsync("dm", &wire.Message{Type: wire.TPush, Since: vclock.Version(i)})
		}
		close(calls)
		if err := <-done; err != nil {
			benchErr = err
		}
	})
	if benchErr != nil {
		return wireBenchResult{}, benchErr
	}
	return wireBenchResult{
		Name:        fmt.Sprintf("pipeline_window/w%d", window),
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}, nil
}

// runWire executes the wire benchmark set; with jsonOut non-empty the
// report is written there as JSON, otherwise a text table goes to stdout.
func runWire(jsonOut string) error {
	report := wireBenchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Results:   runWireBenchmarks(),
	}
	if jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(jsonOut, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", jsonOut, len(report.Results))
		return nil
	}
	fmt.Printf("%-32s %12s %12s %12s\n", "benchmark", "ns/op", "allocs/op", "B/op")
	for _, r := range report.Results {
		fmt.Printf("%-32s %12.1f %12d %12d", r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		for k, v := range r.Extra {
			fmt.Printf("  %s=%.4f", k, v)
		}
		fmt.Println()
	}
	return nil
}
