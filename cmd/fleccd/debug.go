package main

import (
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"flecc/internal/directory"
	"flecc/internal/metrics"
	"flecc/internal/shard"
	"flecc/internal/trace"
	"flecc/internal/transport"
)

// observability bundles the debug endpoint's data sources: the metric
// registry, the raw message trace, and the reconstructed request spans.
type observability struct {
	reg   *metrics.Registry
	rec   *trace.Recorder
	spans *trace.SpanRecorder
}

// newObservability builds the registry and attaches the wire observers
// for a running deployment. Wire-level stats, the trace recorder, and
// the span recorder register on the TCP-facing network (through Faulty
// when fault injection is on, so they see final Seq stamps); in sharded
// mode the trace and span recorders also watch the in-process bridge,
// so router→shard hops appear between a request's arrival and its
// reply. The SpanRecorder dedupes frames observed at both layers.
func newObservability(name string, tnet transport.Network, d *deployment) *observability {
	o := &observability{
		reg:   metrics.NewRegistry(),
		rec:   trace.NewRecorder(2048),
		spans: trace.NewSpanRecorder(name, 256),
	}
	wireStats := metrics.NewMessageStats(false)
	if on, ok := tnet.(transport.ObservableNetwork); ok {
		on.AddObserver(wireStats)
		on.AddObserver(o.rec)
		on.AddObserver(o.spans)
	}
	if d.brdg != nil {
		d.brdg.AddObserver(o.rec)
		d.brdg.AddObserver(o.spans)
	}
	o.reg.SetMessageStats(wireStats)

	registerDM := func(prefix string, dm *directory.Manager) {
		pull, push, fanout := dm.Latencies()
		o.reg.RegisterLatencyAs(prefix+"pull", pull)
		o.reg.RegisterLatencyAs(prefix+"push", push)
		o.reg.RegisterLatencyAs(prefix+"fanout", fanout)
		o.reg.RegisterGauge(prefix+"version", func() int64 { return int64(dm.CurrentVersion()) })
		o.reg.RegisterGauge(prefix+"views", func() int64 { return int64(len(dm.Views())) })
		o.reg.RegisterGauge(prefix+"views_evicted", dm.ViewsEvicted)
		o.reg.RegisterGauge(prefix+"conflicts_resolved", func() int64 { return int64(dm.Store().ConflictsSeen()) })
	}
	if d.dm != nil {
		registerDM("", d.dm)
		o.reg.RegisterGauge("repl_lag", func() int64 { return int64(d.dm.ReplLag()) })
		o.reg.RegisterGauge("ha_epoch", func() int64 { return int64(d.dm.Epoch()) })
		o.reg.RegisterGauge("ha_standby", func() int64 {
			if d.dm.Standby() {
				return 1
			}
			return 0
		})
		o.reg.RegisterGauge("ha_fenced", func() int64 {
			if d.dm.Fenced() {
				return 1
			}
			return 0
		})
	} else {
		for i := 0; i < d.svc.NumShards(); i++ {
			registerDM(fmt.Sprintf("%s.", shard.Node(d.svc.Name(), i)), d.svc.Shard(i))
		}
	}
	if d.faulty != nil {
		o.reg.RegisterGauge("faults_injected", d.faulty.Injected)
	}
	o.reg.RegisterGauge("spans_completed", func() int64 { return int64(o.spans.Total()) })
	return o
}

// serveDebug starts the observability HTTP server on addr and returns
// its listener (so callers can report the bound address and close it).
//
//	/metrics        registry snapshot, text (or ?format=json)
//	/trace          raw message ring as a Figure-2 sequence diagram
//	/spans          reconstructed request spans as call trees
//	/debug/pprof/   the standard runtime profiles
func (o *observability) serveDebug(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			if err := o.reg.WriteJSON(w); err != nil {
				log.Printf("fleccd: /metrics: %v", err)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := o.reg.WriteText(w); err != nil {
			log.Printf("fleccd: /metrics: %v", err)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "# %d messages observed, most recent below\n", o.rec.Total())
		fmt.Fprint(w, o.rec.String())
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "# %d spans completed, %d open, most recent below\n", o.spans.Total(), o.spans.Open())
		fmt.Fprint(w, o.spans.String())
	})
	// net/http/pprof self-registers on DefaultServeMux; mirror its
	// routes on this private mux instead of exposing the default one.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		err := srv.Serve(ln)
		// The daemon shuts the server down by closing the listener.
		if err != nil && err != http.ErrServerClosed && !errors.Is(err, net.ErrClosed) {
			log.Printf("fleccd: debug server: %v", err)
		}
	}()
	return ln, nil
}
