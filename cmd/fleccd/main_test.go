package main

import (
	"bytes"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"flecc/internal/airline"
	"flecc/internal/directory"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// freeAddr reserves a loopback port and releases it for the daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startDaemon launches run() and hands back its exit channel.
func startDaemon(addr, ckpt string, shards int) chan error {
	errc := make(chan error, 1)
	go func() {
		errc <- run(addr, "db", 5, 50, shards, 0, "", ckpt, 0,
			faultOpts{seed: 1}, 0, 0, 0, "", haOpts{})
	}()
	return errc
}

// dialAgent connects a travel-agent view to a daemon, retrying while the
// daemon is still coming up.
func dialAgent(t *testing.T, addr, name string) *airline.TravelAgent {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		a, err := airline.NewTravelAgent(airline.AgentConfig{
			Name: name, Directory: "db",
			Net:         transport.NewDialNetwork(addr, 5*time.Second),
			Clock:       vclock.NewReal(),
			FlightsFrom: 100, FlightsTo: 104,
			Mode: wire.Weak,
		})
		if err == nil {
			return a
		}
		if time.Now().After(deadline) {
			t.Fatalf("dial %s: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// terminate delivers SIGTERM to the process (the daemon's signal.Notify
// picks it up) and waits for run() to exit cleanly.
func terminate(t *testing.T, errc chan error) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
}

// guardSIGTERM keeps the test process alive around the self-delivered
// SIGTERMs (once anything Notifies for a signal, its default death is
// disabled process-wide).
func guardSIGTERM(t *testing.T) {
	t.Helper()
	guard := make(chan os.Signal, 4)
	signal.Notify(guard, syscall.SIGTERM)
	t.Cleanup(func() { signal.Stop(guard) })
}

// TestCheckpointDurableWriteAndCorruptFallback covers the checkpoint
// file discipline: the write-sync-rename-sync sequence round-trips, a
// missing file is a silent cold start, and a corrupt blob is a LOUD cold
// start — never a boot failure.
func TestCheckpointDurableWriteAndCorruptFallback(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.ckpt")

	if snap, err := readCheckpoint(path); err != nil || snap != nil {
		t.Fatalf("missing checkpoint: snap=%v err=%v, want cold start", snap, err)
	}

	blob, err := directory.EncodeSnapshot(&directory.Snapshot{Version: 42})
	if err != nil {
		t.Fatal(err)
	}
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, blob); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
	if err := syncDir(path); err != nil {
		t.Fatal(err)
	}
	snap, err := readCheckpoint(path)
	if err != nil || snap == nil || snap.Version != 42 {
		t.Fatalf("round trip: snap=%+v err=%v", snap, err)
	}

	// Corrupt blob (a torn pre-fsync write, a bad disk): loud log, cold
	// start, no error.
	if err := os.WriteFile(path, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	var logged bytes.Buffer
	log.SetOutput(&logged)
	snap, err = readCheckpoint(path)
	log.SetOutput(os.Stderr)
	if err != nil || snap != nil {
		t.Fatalf("corrupt checkpoint: snap=%v err=%v, want loud cold start", snap, err)
	}
	if !bytes.Contains(logged.Bytes(), []byte("CHECKPOINT CORRUPT")) {
		t.Fatalf("corrupt checkpoint was not loudly logged: %q", logged.String())
	}
}

// TestDaemonSIGTERMShutdownCheckpoint is the shutdown-path test: a
// SIGTERM (what docker stop / systemd send) makes the daemon write a
// final checkpoint and exit cleanly instead of dying mid-write.
func TestDaemonSIGTERMShutdownCheckpoint(t *testing.T) {
	guardSIGTERM(t)
	addr := freeAddr(t)
	ckpt := filepath.Join(t.TempDir(), "db.ckpt")
	errc := startDaemon(addr, ckpt, 1)

	agent := dialAgent(t, addr, "agent-term")
	if err := agent.ReserveTickets(1, 100); err != nil {
		t.Fatal(err)
	}
	if err := agent.CM.PushImage(); err != nil {
		t.Fatal(err)
	}
	agent.CM.KillImage()

	terminate(t, errc)

	snap, err := readCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Version < 1 {
		t.Fatalf("final checkpoint missing the acked commit: %+v", snap)
	}
}

// TestDaemonShardedCheckpointRoundTrip: with -shards 2 the daemon keeps
// one .sN checkpoint per shard. Versions survive a restart, and a
// corrupt shard file cold-starts that one shard — loudly — while the
// daemon still boots and serves.
func TestDaemonShardedCheckpointRoundTrip(t *testing.T) {
	guardSIGTERM(t)
	addr := freeAddr(t)
	ckpt := filepath.Join(t.TempDir(), "db.ckpt")

	// Generation 1: serve, commit, shut down.
	errc := startDaemon(addr, ckpt, 2)
	agent := dialAgent(t, addr, "agent-shard")
	if err := agent.ReserveTickets(1, 100); err != nil {
		t.Fatal(err)
	}
	if err := agent.CM.PushImage(); err != nil {
		t.Fatal(err)
	}
	agent.CM.KillImage()
	terminate(t, errc)

	var vmax vclock.Version
	for i := 0; i < 2; i++ {
		path := shardCheckpointPath(ckpt, i)
		snap, err := readCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}
		if snap == nil {
			t.Fatalf("shard checkpoint %s missing", path)
		}
		if snap.Version > vmax {
			vmax = snap.Version
		}
	}
	if vmax < 1 {
		t.Fatalf("no shard checkpoint recorded the commit (max v%d)", vmax)
	}

	// Generation 2: restart from the .sN files; the version sequence
	// continues where generation 1 stopped (same agent name and props,
	// so the view lands on the same shard).
	errc = startDaemon(addr, ckpt, 2)
	agent = dialAgent(t, addr, "agent-shard")
	if err := agent.ReserveTickets(1, 100); err != nil {
		t.Fatal(err)
	}
	if err := agent.CM.PushImage(); err != nil {
		t.Fatal(err)
	}
	if err := agent.CM.PullImage(); err != nil {
		t.Fatal(err)
	}
	if seen := agent.CM.Seen(); seen <= vmax {
		t.Fatalf("restarted shard did not continue the version sequence: seen v%d, want > v%d", seen, vmax)
	}
	agent.CM.KillImage()
	terminate(t, errc)

	// Generation 3: one shard's checkpoint is corrupt. That shard cold
	// starts; the daemon still boots and serves.
	if err := os.WriteFile(shardCheckpointPath(ckpt, 0), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	errc = startDaemon(addr, ckpt, 2)
	agent = dialAgent(t, addr, "agent-shard")
	if err := agent.ReserveTickets(1, 100); err != nil {
		t.Fatal(err)
	}
	agent.CM.KillImage()
	terminate(t, errc)
}
