// Command fleccd runs a Flecc directory manager as a TCP daemon: the
// original component is an in-memory airline flight database (seeded with
// synthetic flights), and remote cache managers (fleccview) connect over
// TCP to register views, pull, push, and switch modes.
//
// With -shards N (N > 1) the directory is partitioned across N shard
// directory managers behind a router (internal/shard); clients still dial
// the one listen address and name, and the status log reports per-shard
// versions and traffic.
//
// Usage:
//
//	fleccd -addr :7070 -flights 100 -capacity 200
//	fleccd -addr :7070 -shards 4
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"flecc/internal/airline"
	"flecc/internal/directory"
	"flecc/internal/image"
	"flecc/internal/metrics"
	"flecc/internal/secure"
	"flecc/internal/shard"
	"flecc/internal/transport"
	"flecc/internal/vclock"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7070", "listen address")
		name         = flag.String("name", "db", "directory manager node name")
		flights      = flag.Int("flights", 100, "number of synthetic flights to seed (starting at 100)")
		capacity     = flag.Int("capacity", 200, "seats per flight")
		shards       = flag.Int("shards", 1, "number of directory shards (1 = plain single directory manager)")
		interval     = flag.Duration("status", 10*time.Second, "status log interval (0 disables)")
		key          = flag.String("key", "", "shared secret; when set, the link is protected by an encryptor/decryptor pair")
		ckptPath     = flag.String("checkpoint", "", "file to write protocol-metadata snapshots to (enables fail-over; per-shard files get a .sN suffix)")
		ckptEvery    = flag.Duration("checkpoint-every", 30*time.Second, "snapshot interval when -checkpoint is set")
		faultDrop    = flag.Float64("fault-drop", 0, "inject faults: probability [0,1] of dropping any message before delivery")
		faultDelay   = flag.Duration("fault-delay", 0, "inject faults: fixed delay added before delivering each message")
		faultSeed    = flag.Int64("fault-seed", 1, "seed for the fault injector's random stream (deterministic runs)")
		fanOut       = flag.Int("fanout", 0, "max concurrent views contacted per invalidate/gather/propagate round (0 = directory default, 1 = serial)")
		lanes        = flag.Int("lanes", 0, "conflict-group execution lanes: commits of disjoint conflict groups run in parallel (0 or 1 = serial)")
		compactEvery = flag.Duration("compact-every", 0, "update-log compaction interval (0 disables)")
		debugAddr    = flag.String("debug-addr", "", "serve observability HTTP on this address: /metrics (text or ?format=json), /trace, /spans, /debug/pprof (empty disables)")
		standby      = flag.Bool("standby", false, "run as a hot standby: refuse client traffic until promoted (pair with a primary's -replicate-to; single-DM mode)")
		replicateTo  = flag.String("replicate-to", "", "stream replication to the standby fleccd at this address (single-DM mode)")
		haLease      = flag.Duration("ha-lease", 2*time.Second, "HA lease: a standby silent past this self-promotes; a primary unable to reach its standby past this fences itself")
	)
	flag.Parse()
	if err := run(*addr, *name, *flights, *capacity, *shards, *interval, *key, *ckptPath, *ckptEvery,
		faultOpts{drop: *faultDrop, delay: *faultDelay, seed: *faultSeed}, *fanOut, *lanes, *compactEvery, *debugAddr,
		haOpts{standby: *standby, replicateTo: *replicateTo, lease: *haLease}); err != nil {
		fmt.Fprintln(os.Stderr, "fleccd:", err)
		os.Exit(1)
	}
}

// faultOpts carries the -fault-* flags into run.
type faultOpts struct {
	drop  float64
	delay time.Duration
	seed  int64
}

func (f faultOpts) enabled() bool { return f.drop > 0 || f.delay > 0 }

func run(addr, name string, flights, capacity, shards int, statusEvery time.Duration, key, ckptPath string, ckptEvery time.Duration, faults faultOpts, fanOut, lanes int, compactEvery time.Duration, debugAddr string, ha haOpts) error {
	if shards < 1 {
		return fmt.Errorf("-shards must be >= 1")
	}
	if ha.enabled() && shards != 1 {
		return fmt.Errorf("-standby/-replicate-to require -shards 1 (per-shard standby daemons are not wired up)")
	}
	if ha.standby && ha.replicateTo != "" {
		return fmt.Errorf("-standby and -replicate-to are mutually exclusive (no chained replication)")
	}
	if ha.enabled() && ha.lease <= 0 {
		return fmt.Errorf("-ha-lease must be > 0")
	}
	db := airline.NewReservationSystem()
	airline.SeedFlights(db, 100, flights, capacity)

	var ln net.Listener
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if key != "" {
		ln = secure.NewListener(ln, secure.NewPair([]byte(key)))
		log.Printf("fleccd: link protected by encryptor/decryptor pair")
	}
	snet := transport.NewServerNetwork(ln, 30*time.Second)
	var tnet transport.Network = snet
	var faulty *transport.Faulty
	if faults.enabled() {
		faulty = transport.NewFaulty(tnet, faults.seed)
		faulty.SetDropRate(faults.drop)
		faulty.SetDelay(faults.delay)
		tnet = faulty
		log.Printf("fleccd: fault injection on (drop=%.2f delay=%s seed=%d)", faults.drop, faults.delay, faults.seed)
	}
	// One seeded jitter stream serves every retry policy in the process
	// (the DM's view calls and, in sharded mode, the router's shard
	// calls), so identically seeded runs replay the same backoffs.
	retry := transport.RetryPolicy{Jitter: 0.2, Rand: transport.NewRand(faults.seed)}
	opts := directory.Options{Resolver: airline.SeatResolver, FanOut: fanOut, Lanes: lanes, Retry: retry}
	if lanes > 1 {
		log.Printf("fleccd: conflict-group striping on (%d lanes)", lanes)
	}

	if ha.standby {
		opts.Standby = true
	}
	d, err := newDeployment(name, db, tnet, shards, opts, ckptPath)
	if err != nil {
		return err
	}
	d.faulty = faulty
	d.snet = snet
	defer d.close()
	if d.svc != nil {
		d.svc.Router().SetRetryPolicy(retry)
	}
	role := "primary"
	if ha.standby {
		role = "hot standby (client traffic gated until promotion)"
	}
	log.Printf("fleccd: directory %q (%d shard(s), %s) serving %d flights on %s", name, shards, role, flights, ln.Addr())

	var repl *directory.Replicator
	if ha.replicateTo != "" {
		var stopRepl func()
		repl, stopRepl, err = startDaemonReplication(d.dm, name, ha.replicateTo, key, ha, retry)
		if err != nil {
			return err
		}
		defer stopRepl()
	}

	if debugAddr != "" {
		obs := newObservability(name, tnet, d)
		dln, err := obs.serveDebug(debugAddr)
		if err != nil {
			return err
		}
		defer dln.Close()
		log.Printf("fleccd: observability on http://%s (/metrics /trace /spans /debug/pprof)", dln.Addr())
	}

	checkpoint := func() {
		if ckptPath == "" {
			return
		}
		for _, c := range d.checkpoints() {
			blob, err := directory.EncodeSnapshot(c.snap)
			if err != nil {
				log.Printf("fleccd: snapshot: %v", err)
				continue
			}
			// Write-sync-rename-sync: the blob is durable before the rename
			// publishes it, and the rename itself is durable once the
			// directory entry is synced. A crash at any point leaves either
			// the old checkpoint or the new one — never a torn file.
			tmp := c.path + ".tmp"
			if err := writeFileSync(tmp, blob); err != nil {
				log.Printf("fleccd: checkpoint: %v", err)
				continue
			}
			if err := os.Rename(tmp, c.path); err != nil {
				log.Printf("fleccd: checkpoint: %v", err)
				continue
			}
			if err := syncDir(c.path); err != nil {
				log.Printf("fleccd: checkpoint: sync dir: %v", err)
			}
		}
	}
	var ckptTick <-chan time.Time
	if ckptPath != "" && ckptEvery > 0 {
		t := time.NewTicker(ckptEvery)
		defer t.Stop()
		ckptTick = t.C
	}

	stop := make(chan os.Signal, 1)
	// SIGTERM is what init systems and container runtimes send; without it
	// a `docker stop` or systemd shutdown killed the daemon before the
	// final checkpoint below could run.
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if statusEvery > 0 {
		ticker = time.NewTicker(statusEvery)
		defer ticker.Stop()
		tick = ticker.C
	}
	var compactTick <-chan time.Time
	if compactEvery > 0 {
		t := time.NewTicker(compactEvery)
		defer t.Stop()
		compactTick = t.C
	}
	var haTickC <-chan time.Time
	if ha.enabled() {
		t, c := haTicker(ha)
		defer t.Stop()
		haTickC = c
	}
	wasFenced, wasStandby := false, ha.standby
	for {
		select {
		case <-stop:
			checkpoint()
			log.Printf("fleccd: shutting down")
			return nil
		case <-ckptTick:
			checkpoint()
		case <-haTickC:
			if msg := haTick(d.dm, repl, ha, &wasFenced, &wasStandby); msg != "" {
				log.Printf("fleccd: %s", msg)
			}
		case <-compactTick:
			if n := d.compact(); n > 0 {
				log.Printf("fleccd: compacted %d update-log records", n)
			}
		case <-tick:
			log.Printf("fleccd: %s", d.status())
		}
	}
}

// deployment abstracts over the two daemon shapes: one directory manager
// attached straight to the TCP server network, or a sharded service on a
// bridge behind it.
type deployment struct {
	dm     *directory.Manager // single-DM mode
	svc    *shard.Service     // sharded mode
	brdg   *shard.Bridge
	stats  *metrics.MessageStats
	faulty *transport.Faulty
	snet   *transport.ServerNetwork // wire counters for the status line
	ckpt   string
}

type checkpointUnit struct {
	path string
	snap *directory.Snapshot
}

func newDeployment(name string, db image.Codec, snet transport.Network, shards int, opts directory.Options, ckptPath string) (*deployment, error) {
	d := &deployment{ckpt: ckptPath}
	if shards == 1 {
		if ckptPath != "" {
			if snap, err := readCheckpoint(ckptPath); err != nil {
				return nil, err
			} else if snap != nil {
				opts.Snapshot = snap
				log.Printf("fleccd: restored checkpoint from %s (v%d)", ckptPath, snap.Version)
			}
		}
		dm, err := directory.New(name, db, vclock.NewReal(), snet, opts)
		if err != nil {
			return nil, err
		}
		d.dm = dm
		return d, nil
	}

	d.brdg = shard.NewBridge()
	d.stats = metrics.NewMessageStats(false)
	d.brdg.SetObserver(d.stats)
	svc, err := shard.NewService(shard.ServiceConfig{
		Name:  name,
		Net:   d.brdg,
		Clock: vclock.NewReal(),
		// All shards extract from the one in-process database; the airline
		// codec is mutex-guarded, so sharing it is safe.
		Shards:  shards,
		Primary: func(int) image.Codec { return db },
		Opts:    opts,
	})
	if err != nil {
		return nil, err
	}
	d.svc = svc
	if ckptPath != "" {
		for i := 0; i < shards; i++ {
			path := shardCheckpointPath(ckptPath, i)
			snap, err := readCheckpoint(path)
			if err != nil {
				svc.Close()
				return nil, err
			}
			if snap == nil {
				continue
			}
			if err := svc.Shard(i).Store().Restore(snap); err != nil {
				svc.Close()
				return nil, err
			}
			log.Printf("fleccd: restored shard %d checkpoint from %s (v%d)", i, path, snap.Version)
		}
	}
	if err := d.brdg.ConnectUplink(snet, name); err != nil {
		svc.Close()
		return nil, err
	}
	return d, nil
}

func shardCheckpointPath(base string, i int) string {
	return fmt.Sprintf("%s.s%d", base, i)
}

// readCheckpoint loads a snapshot file. A missing file is not an error
// (cold start), and neither is a corrupt one: a blob that fails to decode
// — a torn write from a pre-fsync crash, a truncated disk — is loudly
// logged and treated as cold start, because refusing to boot over a
// checkpoint that exists only as an optimization would turn a recoverable
// restart into an outage.
func readCheckpoint(path string) (*directory.Snapshot, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	snap, err := directory.DecodeSnapshot(blob)
	if err != nil {
		log.Printf("fleccd: CHECKPOINT CORRUPT: %s failed to decode (%v); discarding it and starting cold", path, err)
		return nil, nil
	}
	return snap, nil
}

// writeFileSync writes blob to path and fsyncs it before returning.
func writeFileSync(path string, blob []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs the directory containing path, making a just-renamed
// entry durable.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

func (d *deployment) checkpoints() []checkpointUnit {
	if d.dm != nil {
		return []checkpointUnit{{path: d.ckpt, snap: d.dm.Store().Snapshot()}}
	}
	out := make([]checkpointUnit, 0, d.svc.NumShards())
	for i := 0; i < d.svc.NumShards(); i++ {
		out = append(out, checkpointUnit{
			path: shardCheckpointPath(d.ckpt, i),
			snap: d.svc.Shard(i).Store().Snapshot(),
		})
	}
	return out
}

// latencyLine renders the non-empty hot-path latency counters of one or
// more directory managers ("" when nothing has been observed yet). With
// several shards, counts and totals are summed so the line reads as one
// logical directory.
func latencyLine(dms ...*directory.Manager) string {
	type acc struct {
		name  string
		count int64
		ns    int64
	}
	accs := [3]acc{{name: "pull"}, {name: "push"}, {name: "fanout"}}
	for _, dm := range dms {
		pull, push, fanout := dm.Latencies()
		for i, l := range []*metrics.Latency{pull, push, fanout} {
			accs[i].count += l.Count()
			accs[i].ns += l.TotalNs()
		}
	}
	var parts []string
	for _, a := range accs {
		if a.count == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s n=%d avg=%s", a.name, a.count, time.Duration(a.ns/a.count)))
	}
	if len(parts) == 0 {
		return ""
	}
	return "lat " + strings.Join(parts, " ")
}

// sizeString renders a byte count with a binary unit suffix.
func sizeString(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// compact drops update-log records every live view has already seen.
func (d *deployment) compact() int {
	if d.dm != nil {
		return d.dm.CompactLog()
	}
	return d.svc.CompactAll()
}

func (d *deployment) status() string {
	var b strings.Builder
	if d.dm != nil {
		views := d.dm.Views()
		fmt.Fprintf(&b, "v%d, %d views registered %v, %d conflicts resolved",
			d.dm.CurrentVersion(), len(views), views, d.dm.Store().ConflictsSeen())
		if n := d.dm.ViewsEvicted(); n > 0 {
			fmt.Fprintf(&b, ", %d views evicted %v", n, d.dm.LostViews())
		}
		if lat := latencyLine(d.dm); lat != "" {
			fmt.Fprintf(&b, "; %s", lat)
		}
	} else {
		fmt.Fprintf(&b, "%d shards", d.svc.NumShards())
		var evicted int64
		for i := 0; i < d.svc.NumShards(); i++ {
			dm := d.svc.Shard(i)
			fmt.Fprintf(&b, "; %s v%d %d views", shard.Node(d.svc.Name(), i), dm.CurrentVersion(), len(dm.Views()))
			evicted += dm.ViewsEvicted()
		}
		if evicted > 0 {
			fmt.Fprintf(&b, "; %d views evicted", evicted)
		}
		dms := make([]*directory.Manager, 0, d.svc.NumShards())
		for i := 0; i < d.svc.NumShards(); i++ {
			dms = append(dms, d.svc.Shard(i))
		}
		if lat := latencyLine(dms...); lat != "" {
			fmt.Fprintf(&b, "; %s", lat)
		}
		if per := d.stats.PerShardString(); per != "" {
			fmt.Fprintf(&b, "; traffic %s", per)
		}
	}
	if d.snet != nil {
		if ws := d.snet.WireStats(); ws.Flushes > 0 {
			fmt.Fprintf(&b, "; wire %d frames/%d writes (%.2f per write, %s)",
				ws.Frames, ws.Flushes, float64(ws.Frames)/float64(ws.Flushes), sizeString(ws.Bytes))
		}
	}
	if d.faulty != nil {
		fmt.Fprintf(&b, "; %d faults injected", d.faulty.Injected())
	}
	return b.String()
}

func (d *deployment) close() {
	if d.dm != nil {
		d.dm.Close()
	}
	if d.brdg != nil {
		d.brdg.Close()
	}
	if d.svc != nil {
		d.svc.Close()
	}
}
