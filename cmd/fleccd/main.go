// Command fleccd runs a Flecc directory manager as a TCP daemon: the
// original component is an in-memory airline flight database (seeded with
// synthetic flights), and remote cache managers (fleccview) connect over
// TCP to register views, pull, push, and switch modes.
//
// Usage:
//
//	fleccd -addr :7070 -flights 100 -capacity 200
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"time"

	"flecc/internal/airline"
	"flecc/internal/directory"
	"flecc/internal/secure"
	"flecc/internal/transport"
	"flecc/internal/vclock"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "listen address")
		name      = flag.String("name", "db", "directory manager node name")
		flights   = flag.Int("flights", 100, "number of synthetic flights to seed (starting at 100)")
		capacity  = flag.Int("capacity", 200, "seats per flight")
		interval  = flag.Duration("status", 10*time.Second, "status log interval (0 disables)")
		key       = flag.String("key", "", "shared secret; when set, the link is protected by an encryptor/decryptor pair")
		ckptPath  = flag.String("checkpoint", "", "file to write protocol-metadata snapshots to (enables fail-over; see -checkpoint-every)")
		ckptEvery = flag.Duration("checkpoint-every", 30*time.Second, "snapshot interval when -checkpoint is set")
	)
	flag.Parse()
	if err := run(*addr, *name, *flights, *capacity, *interval, *key, *ckptPath, *ckptEvery); err != nil {
		fmt.Fprintln(os.Stderr, "fleccd:", err)
		os.Exit(1)
	}
}

func run(addr, name string, flights, capacity int, statusEvery time.Duration, key, ckptPath string, ckptEvery time.Duration) error {
	db := airline.NewReservationSystem()
	airline.SeedFlights(db, 100, flights, capacity)

	var ln net.Listener
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if key != "" {
		ln = secure.NewListener(ln, secure.NewPair([]byte(key)))
		log.Printf("fleccd: link protected by encryptor/decryptor pair")
	}
	snet := transport.NewServerNetwork(ln, 30*time.Second)
	opts := directory.Options{Resolver: airline.SeatResolver}
	if ckptPath != "" {
		// Warm-restore from a previous checkpoint, if present (the
		// fail-over mechanism; see PROTOCOL.md).
		if blob, err := os.ReadFile(ckptPath); err == nil {
			snap, err := directory.DecodeSnapshot(blob)
			if err != nil {
				return fmt.Errorf("restore %s: %w", ckptPath, err)
			}
			opts.Snapshot = snap
			log.Printf("fleccd: restored checkpoint from %s (v%d)", ckptPath, snap.Version)
		}
	}
	dm, err := directory.New(name, db, vclock.NewReal(), snet, opts)
	if err != nil {
		return err
	}
	defer dm.Close()
	log.Printf("fleccd: directory manager %q serving %d flights on %s", name, flights, ln.Addr())

	checkpoint := func() {
		if ckptPath == "" {
			return
		}
		blob, err := directory.EncodeSnapshot(dm.Store().Snapshot())
		if err != nil {
			log.Printf("fleccd: snapshot: %v", err)
			return
		}
		tmp := ckptPath + ".tmp"
		if err := os.WriteFile(tmp, blob, 0o644); err != nil {
			log.Printf("fleccd: checkpoint: %v", err)
			return
		}
		if err := os.Rename(tmp, ckptPath); err != nil {
			log.Printf("fleccd: checkpoint: %v", err)
		}
	}
	var ckptTick <-chan time.Time
	if ckptPath != "" && ckptEvery > 0 {
		t := time.NewTicker(ckptEvery)
		defer t.Stop()
		ckptTick = t.C
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if statusEvery > 0 {
		ticker = time.NewTicker(statusEvery)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-stop:
			checkpoint()
			log.Printf("fleccd: shutting down")
			return nil
		case <-ckptTick:
			checkpoint()
		case <-tick:
			views := dm.Views()
			log.Printf("fleccd: v%d, %d views registered %v, %d conflicts resolved",
				dm.CurrentVersion(), len(views), views, dm.Store().ConflictsSeen())
		}
	}
}
