package main

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"flecc/internal/directory"
	"flecc/internal/image"
	"flecc/internal/property"
	"flecc/internal/transport"
	"flecc/internal/vclock"
)

// mapCodec is a minimal image codec for the HA wiring tests (mutex-guarded:
// the TCP test merges from the server goroutine while the test reads).
type mapCodec struct {
	mu   sync.Mutex
	data map[string]string
}

func newMapCodec() *mapCodec { return &mapCodec{data: map[string]string{}} }

func (c *mapCodec) Extract(props property.Set) (*image.Image, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	img := image.New(props.Clone())
	for k, v := range c.data {
		img.Put(image.Entry{Key: k, Value: []byte(v)})
	}
	return img, nil
}

func (c *mapCodec) Merge(img *image.Image, props property.Set) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range img.Entries {
		if e.Deleted {
			delete(c.data, k)
			continue
		}
		c.data[k] = string(e.Value)
	}
	return nil
}

func (c *mapCodec) get(k string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.data[k]
}

// TestHATickStandbySelfPromotes: the standby's ticker path. Once the
// replication stream has been silent past the lease, haTick promotes the
// standby to primary; before that deadline it stays gated.
func TestHATickStandbySelfPromotes(t *testing.T) {
	clock := vclock.NewSim()
	inproc := transport.NewInproc()
	prim, err := directory.New("p", newMapCodec(), clock, inproc, directory.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	sb, err := directory.New("db", newMapCodec(), clock, inproc, directory.Options{Standby: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	repl, err := prim.StartReplication(directory.ReplConfig{Inline: true}, directory.ReplTarget{Name: "db"})
	if err != nil {
		t.Fatal(err)
	}

	// One replicated commit arms the silence clock on the standby.
	delta := image.New(property.NewSet())
	delta.Put(image.Entry{Key: "k", Value: []byte("v")})
	if _, err := prim.CommitLocal(delta, 1); err != nil {
		t.Fatal(err)
	}

	ha := haOpts{standby: true, lease: 200 * time.Millisecond}
	wasFenced, wasStandby := false, true

	// Within the lease: no transition.
	clock.Advance(100)
	if msg := haTick(sb, nil, ha, &wasFenced, &wasStandby); msg != "" {
		t.Fatalf("premature transition: %q", msg)
	}
	if !sb.Standby() {
		t.Fatal("standby promoted inside the lease")
	}

	// The primary falls silent past the lease: the next tick promotes.
	repl.Close()
	clock.Advance(200)
	msg := haTick(sb, nil, ha, &wasFenced, &wasStandby)
	if !strings.Contains(msg, "promoted to primary") {
		t.Fatalf("tick past the lease returned %q, want a promotion", msg)
	}
	if sb.Standby() {
		t.Fatal("standby still gating after self-promotion")
	}
	if sb.Epoch() == 0 {
		t.Fatal("self-promotion did not open a new epoch")
	}
	// The transition logs once; a later tick is quiet.
	if msg := haTick(sb, nil, ha, &wasFenced, &wasStandby); msg != "" {
		t.Fatalf("repeated transition message: %q", msg)
	}
}

// TestHATickCoordinatorPromotion: when a coordinated failover flips the
// role via a promote batch, the ticker notices and reports it exactly
// once.
func TestHATickCoordinatorPromotion(t *testing.T) {
	clock := vclock.NewSim()
	inproc := transport.NewInproc()
	sb, err := directory.New("db", newMapCodec(), clock, inproc, directory.Options{Standby: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()

	ctl, err := inproc.Attach("ctl", refuseCallback)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := directory.PromoteMessage(1)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := ctl.Call("db", pm)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Err != "" {
		t.Fatalf("promote refused: %s", reply.Err)
	}

	ha := haOpts{standby: true, lease: 200 * time.Millisecond}
	wasFenced, wasStandby := false, true
	msg := haTick(sb, nil, ha, &wasFenced, &wasStandby)
	if !strings.Contains(msg, "promoted to primary by coordinator") {
		t.Fatalf("tick returned %q, want a coordinator promotion", msg)
	}
	if msg := haTick(sb, nil, ha, &wasFenced, &wasStandby); msg != "" {
		t.Fatalf("repeated transition message: %q", msg)
	}
}

// TestStartDaemonReplicationTCP: the daemon-to-daemon link. A primary
// replicates over a real TCP connection to a standby daemon's listener;
// commits barrier on the standby's ack, and the redialing endpoint
// survives the standby restarting on the same address.
func TestStartDaemonReplicationTCP(t *testing.T) {
	clock := vclock.NewReal()
	inproc := transport.NewInproc()
	prim, err := directory.New("db", newMapCodec(), clock, inproc, directory.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	snet := transport.NewServerNetwork(ln, 5*time.Second)
	sbCodec := newMapCodec()
	sb, err := directory.New("db", sbCodec, clock, snet, directory.Options{Standby: true})
	if err != nil {
		t.Fatal(err)
	}

	ha := haOpts{replicateTo: addr, lease: time.Second}
	retry := transport.RetryPolicy{Attempts: 20, Sleep: func(time.Duration) { time.Sleep(20 * time.Millisecond) }}
	repl, stop, err := startDaemonReplication(prim, "db", addr, "", ha, retry)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	// CommitLocal barriers on the standby's ack: when it returns, the
	// batch has crossed the wire and been absorbed.
	delta := image.New(property.NewSet())
	delta.Put(image.Entry{Key: "k", Value: []byte("one")})
	if _, err := prim.CommitLocal(delta, 1); err != nil {
		t.Fatal(err)
	}
	if got := sb.CurrentVersion(); got != prim.CurrentVersion() {
		t.Fatalf("standby at v%d, primary at v%d", got, prim.CurrentVersion())
	}
	if sbCodec.get("k") != "one" {
		t.Fatalf("standby codec k=%q, want one", sbCodec.get("k"))
	}
	_ = repl

	// Standby restart on the same address, from scratch: the old conn
	// dies; the redial endpoint dials afresh, the fresh standby's gap
	// refusal rewinds the stream to a full snapshot, and the next commit
	// still barriers — all without restarting the primary.
	if err := sb.Close(); err != nil {
		t.Fatal(err)
	}
	ln2, err := rebind(addr)
	if err != nil {
		t.Fatal(err)
	}
	snet2 := transport.NewServerNetwork(ln2, 5*time.Second)
	sbCodec2 := newMapCodec()
	sb2, err := directory.New("db", sbCodec2, clock, snet2, directory.Options{Standby: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sb2.Close()

	delta2 := image.New(property.NewSet())
	delta2.Put(image.Entry{Key: "k", Value: []byte("two")})
	if _, err := prim.CommitLocal(delta2, 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for sb2.CurrentVersion() < prim.CurrentVersion() {
		if time.Now().After(deadline) {
			t.Fatalf("replication never resumed after standby restart (standby at v%d)", sb2.CurrentVersion())
		}
		repl.Heartbeat()
		time.Sleep(20 * time.Millisecond)
	}
	if sbCodec2.get("k") != "two" {
		t.Fatalf("restarted standby codec k=%q, want two", sbCodec2.get("k"))
	}
}

// rebind reacquires a just-released listen address, retrying briefly while
// the kernel finishes tearing the old listener down.
func rebind(addr string) (net.Listener, error) {
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil, err
}
