package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"flecc/internal/directory"
	"flecc/internal/secure"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// Daemon-level HA wiring (single-DM mode). Two fleccd processes pair up:
//
//	fleccd -addr :7070 -checkpoint /var/lib/flecc/db.ckpt -replicate-to 127.0.0.1:7071
//	fleccd -addr :7071 -standby
//
// The primary dials the standby's listen address and streams replication
// batches (internal/directory's TReplicate session); every client-visible
// mutation barriers on the standby's ack. The standby refuses client
// traffic until it either receives a promote batch or notices the stream
// has been silent past the lease and promotes itself; the primary, unable
// to reach its standby past the same lease, fences itself — so at most
// one side serves. Clients re-dial via their fallback address list
// (internal/cache Config.Fallbacks).

// haOpts carries the -standby / -replicate-to / -ha-lease flags into run.
type haOpts struct {
	standby     bool
	replicateTo string
	lease       time.Duration
}

func (h haOpts) enabled() bool { return h.standby || h.replicateTo != "" }

// leaseMs converts the flag duration to the virtual-clock unit.
func (h haOpts) leaseMs() vclock.Duration {
	return vclock.Duration(h.lease / time.Millisecond)
}

// refuseCallback answers server-initiated calls on the replication link;
// the link exists only for primary→standby requests, so anything arriving
// the other way is a protocol violation.
func refuseCallback(req *wire.Message) *wire.Message {
	return &wire.Message{Type: wire.TErr, Err: "fleccd: replication link carries no server-initiated calls"}
}

// redialEndpoint is a self-healing dialing endpoint for the replication
// link: it dials lazily on first use and, when a call fails at the
// transport level, drops the dead connection so the next call (the
// replicator's heartbeat probe) dials afresh. Without it, one standby
// restart would degrade replication until the primary restarted too.
type redialEndpoint struct {
	dnet *transport.DialNetwork
	name string

	mu     sync.Mutex
	c      transport.Endpoint
	closed bool
}

func (e *redialEndpoint) Name() string { return e.name }

func (e *redialEndpoint) Call(to string, req *wire.Message) (*wire.Message, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, transport.ErrClosed
	}
	c := e.c
	if c == nil {
		var err error
		c, err = e.dnet.Attach(e.name, refuseCallback)
		if err != nil {
			e.mu.Unlock()
			return nil, err
		}
		e.c = c
	}
	e.mu.Unlock()
	reply, err := c.Call(to, req)
	if err != nil && transport.IsTransportError(err) {
		e.mu.Lock()
		if e.c == c {
			c.Close()
			e.c = nil
		}
		e.mu.Unlock()
	}
	return reply, err
}

func (e *redialEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	if e.c != nil {
		err := e.c.Close()
		e.c = nil
		return err
	}
	return nil
}

// startDaemonReplication attaches the primary's replication session,
// dialing the standby daemon at addr (through the shared-key encryptor
// pair when the link is protected). The returned stop function closes the
// session and the link.
func startDaemonReplication(dm *directory.Manager, name, addr, key string, ha haOpts, retry transport.RetryPolicy) (*directory.Replicator, func(), error) {
	dnet := transport.NewDialNetwork(addr, 30*time.Second)
	if key != "" {
		pair := secure.NewPair([]byte(key))
		dnet.DialFn = func(a string) (net.Conn, error) { return secure.Dial(a, pair) }
	}
	ep := &redialEndpoint{dnet: dnet, name: name + "!repl"}
	repl, err := dm.StartReplication(directory.ReplConfig{
		Lease:        ha.leaseMs(),
		FenceOnLapse: true,
		Retry:        retry,
	}, directory.ReplTarget{Name: name, Ep: ep})
	if err != nil {
		ep.Close()
		return nil, nil, err
	}
	log.Printf("fleccd: replicating to standby at %s (lease %s)", addr, ha.lease)
	return repl, func() { repl.Close(); ep.Close() }, nil
}

// haTicker drives the periodic HA work: heartbeats on the primary
// (which double as fence checks and down-standby probes) and the
// silence check on the standby. A quarter-lease period keeps both
// well inside the lease.
func haTicker(ha haOpts) (*time.Ticker, <-chan time.Time) {
	period := ha.lease / 4
	if period < 50*time.Millisecond {
		period = 50 * time.Millisecond
	}
	t := time.NewTicker(period)
	return t, t.C
}

// haTick runs one HA maintenance step; it returns a human-readable role
// transition to log, or "".
func haTick(dm *directory.Manager, repl *directory.Replicator, ha haOpts, wasFenced, wasStandby *bool) string {
	if repl != nil {
		repl.Heartbeat()
		if f := dm.Fenced(); f && !*wasFenced {
			*wasFenced = true
			return "fenced: standby unreachable past the lease (it may have promoted); refusing all traffic"
		}
	}
	if ha.standby && *wasStandby && dm.Standby() {
		if s := dm.StandbySilence(); s > ha.leaseMs() {
			epoch := dm.PromoteSelf()
			*wasStandby = false
			return fmt.Sprintf("promoted to primary (replication silent %s > lease): epoch %d",
				time.Duration(s)*time.Millisecond, epoch)
		}
	}
	if ha.standby && *wasStandby && !dm.Standby() {
		// A promote batch (coordinated failover) flipped the role.
		*wasStandby = false
		return fmt.Sprintf("promoted to primary by coordinator: epoch %d", dm.Epoch())
	}
	return ""
}
