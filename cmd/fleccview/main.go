// Command fleccview runs an interactive travel-agent view against a
// fleccd directory daemon. It dials the daemon, registers a view over a
// flight range, and accepts commands on stdin:
//
//	pull                  refresh the replica from the primary
//	push                  publish local changes
//	reserve <n> <flight>  reserve n seats (inside a use window)
//	browse                list flights with availability
//	mode strong|weak      switch consistency mode
//	status                show version/validity/pending
//	quit                  push pending changes, unregister, exit
//
// Usage:
//
//	fleccview -addr 127.0.0.1:7070 -name agent-1 -from 100 -to 109
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"flecc/internal/airline"
	"flecc/internal/cache"
	"flecc/internal/secure"
	"flecc/internal/transport"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "fleccd address")
		dir       = flag.String("dir", "db", "directory manager node name")
		name      = flag.String("name", "agent-1", "view node name")
		from      = flag.Int("from", 100, "first served flight")
		to        = flag.Int("to", 109, "last served flight")
		mode      = flag.String("mode", "weak", "initial mode: weak or strong")
		key       = flag.String("key", "", "shared secret matching the daemon's -key (encryptor/decryptor pair)")
		pushTrig  = flag.String("pushtrigger", "", `push quality trigger, e.g. "pending > 0 && sincePush > 1500"`)
		pullTrig  = flag.String("pulltrigger", "", `pull quality trigger, e.g. "sincePull > 2000"`)
		tick      = flag.Duration("tick", time.Second, "trigger evaluation period")
		reconnect = flag.Int("reconnect", cache.DefaultReconnectAttempts, "reconnect attempts when the daemon connection dies (0 disables)")
		reconBase = flag.Duration("reconnect-base", cache.DefaultReconnectBase, "initial reconnect backoff (doubles per attempt)")
		reconMax  = flag.Duration("reconnect-max", cache.DefaultReconnectMax, "reconnect backoff cap")
	)
	flag.Parse()
	var pol *cache.ReconnectPolicy
	if *reconnect > 0 {
		pol = &cache.ReconnectPolicy{
			Attempts: *reconnect,
			Base:     *reconBase,
			Max:      *reconMax,
			Jitter:   0.2,
		}
	}
	if err := run(*addr, *dir, *name, *from, *to, *mode, *key, *pushTrig, *pullTrig, *tick, pol); err != nil {
		fmt.Fprintln(os.Stderr, "fleccview:", err)
		os.Exit(1)
	}
}

func run(addr, dir, name string, from, to int, modeStr, key, pushTrig, pullTrig string, tick time.Duration, recon *cache.ReconnectPolicy) error {
	m := wire.Weak
	if strings.EqualFold(modeStr, "strong") {
		m = wire.Strong
	}
	dnet := transport.NewDialNetwork(addr, 30*time.Second)
	if key != "" {
		pair := secure.NewPair([]byte(key))
		dnet.DialFn = func(a string) (net.Conn, error) { return secure.Dial(a, pair) }
	}
	agent, err := airline.NewTravelAgent(airline.AgentConfig{
		Name: name, Directory: dir, Net: dnet, Clock: vclock.NewReal(),
		FlightsFrom: from, FlightsTo: to, Mode: m,
		PushTrigger: pushTrig, PullTrigger: pullTrig,
		Reconnect: recon,
	})
	if err != nil {
		return err
	}
	fmt.Printf("view %s registered (flights %d-%d, %s mode); %d flights in replica\n",
		name, from, to, m, agent.ARS.Len())
	if stop := agent.CM.StartTicker(tick, func(err error) {
		fmt.Println("  trigger error:", err)
	}); stop != nil {
		defer stop()
		fmt.Printf("quality triggers armed (evaluated every %v)\n", tick)
	}

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			fmt.Print("> ")
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "quit", "exit":
			if err := agent.Close(); err != nil {
				return err
			}
			fmt.Println("bye")
			return nil
		case "pull":
			report(agent.CM.PullImage())
		case "push":
			report(agent.CM.PushImage())
		case "reserve":
			if len(fields) != 3 {
				fmt.Println("usage: reserve <count> <flight>")
				break
			}
			n, err1 := strconv.Atoi(fields[1])
			fl, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				fmt.Println("usage: reserve <count> <flight>")
				break
			}
			report(agent.ReserveTickets(n, fl))
		case "browse":
			flights, err := agent.Browse("", "")
			if err != nil {
				report(err)
				break
			}
			for _, f := range flights {
				fmt.Printf("  flight %d %s->%s  %d/%d seats free  $%.2f\n",
					f.Number, f.Origin, f.Dest, f.Available(), f.Capacity, float64(f.Fare)/100)
			}
		case "mode":
			if len(fields) != 2 {
				fmt.Println("usage: mode strong|weak")
				break
			}
			newMode := wire.Weak
			if strings.EqualFold(fields[1], "strong") {
				newMode = wire.Strong
			}
			report(agent.CM.SetMode(newMode))
		case "status":
			fmt.Printf("  mode=%s seen=v%d valid=%v pending-ops=%d invalidations=%d\n",
				agent.CM.Mode(), agent.CM.Seen(), agent.CM.Valid(),
				agent.CM.PendingOps(), agent.CM.Invalidations())
		default:
			fmt.Println("commands: pull push reserve browse mode status quit")
		}
		fmt.Print("> ")
	}
	return agent.Close()
}

func report(err error) {
	if err != nil {
		fmt.Println("  error:", err)
	} else {
		fmt.Println("  ok")
	}
}
