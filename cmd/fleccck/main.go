// Command fleccck model-checks the Flecc protocol under reconfiguration:
// it exhaustively explores every interleaving of protocol steps (write,
// push, pull) with reconfigurations (mode switch, property change, view
// crash/revive, directory migration) at small bounds, checking safety
// invariants after every transition and rendering the first violation as
// an action schedule plus a Figure-2 message-flow diagram.
//
// Usage:
//
//	fleccck                                  # default bounds: 2 views, 1 key, 1 reconfig
//	fleccck -views 3 -keys 2 -reconfigs 1    # the standard pre-merge sweep
//	fleccck -depth 5 -writes 1               # shallower / cheaper
//	fleccck -drop 7                          # drop the 7th request of every replay
//	fleccck -pipeline=false                  # disable the push-async/flush session actions
//	fleccck -failover=false                  # disable crash-primary/promote-standby
//	fleccck -skip-invalidate v2              # seed the known mutation (must FAIL)
//
// Exit status 0 means every invariant held over the explored space; 1
// means a counterexample was found (printed to stdout); 2 means the
// checker itself failed.
package main

import (
	"flag"
	"fmt"
	"os"

	"flecc/internal/modelcheck"
)

func main() {
	def := modelcheck.DefaultConfig()
	var (
		views     = flag.Int("views", def.Views, "number of views (v1 strong, rest weak)")
		keys      = flag.Int("keys", def.Keys, "number of shared keys")
		reconfigs = flag.Int("reconfigs", def.Reconfigs, "reconfiguration budget per schedule")
		depth     = flag.Int("depth", def.Depth, "maximum schedule length")
		writes    = flag.Int("writes", def.WritesPerView, "writes per view per schedule")
		validity  = flag.String("validity", def.Validity, "validity trigger registered by every view")
		propagate = flag.Bool("propagate", false, "use push-based update propagation")
		migrate   = flag.Bool("migrate", def.Migrate, "enable the dm!a → dm!b migration reconfiguration")
		failover  = flag.Bool("failover", def.Failover, "enable hot-standby replication with crash-primary/promote-standby")
		crash     = flag.Bool("crash", def.Crash, "enable crash/revive reconfigurations")
		modes     = flag.Bool("modes", def.SetModes, "enable mode-switch reconfigurations")
		props     = flag.Bool("props", def.SetProps, "enable property-change reconfigurations")
		quiesce   = flag.Bool("quiesce", def.Quiesce, "probe weak convergence at every state")
		pipeline  = flag.Bool("pipeline", def.Pipeline, "enable the asynchronous push-async/flush session actions")
		maxStates = flag.Int("max-states", 0, "abort after this many states (0 = unlimited)")
		skipInval = flag.String("skip-invalidate", "", "seed the skip-invalidation mutation for the named view")
		drop      = flag.Int("drop", 0, "drop the Nth delivered request of every replay (0 = none)")
	)
	flag.Parse()

	cfg := modelcheck.Config{
		Views:           *views,
		Keys:            *keys,
		Reconfigs:       *reconfigs,
		Depth:           *depth,
		WritesPerView:   *writes,
		Validity:        *validity,
		PropagateOnPush: *propagate,
		Migrate:         *migrate,
		Failover:        *failover,
		Crash:           *crash,
		SetModes:        *modes,
		SetProps:        *props,
		Quiesce:         *quiesce,
		Pipeline:        *pipeline,
		MaxStates:       *maxStates,
		SkipInvalidate:  *skipInval,
		DropMessage:     *drop,
	}
	res, err := modelcheck.Explore(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleccck:", err)
		os.Exit(2)
	}
	fmt.Println(res)
	if res.Violation != nil {
		os.Exit(1)
	}
}
