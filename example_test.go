package flecc_test

import (
	"fmt"

	"flecc"
)

// ExampleNew shows the minimal lifecycle: a primary component, one view,
// a coherent update round trip.
func ExampleNew() {
	db := flecc.NewMapCodec()
	db.SetString("greeting", "hello")
	sys, _ := flecc.New("db", db)
	defer sys.Close()

	replica := flecc.NewMapCodec()
	v, _ := sys.NewView(flecc.ViewConfig{
		Name:  "replica-1",
		View:  replica,
		Props: flecc.MustProps("Data={greeting}"),
	})
	fmt.Println("initialized:", replica.GetString("greeting"))

	v.Use(func() error {
		replica.SetString("greeting", "bonjour")
		return nil
	})
	v.Push()
	fmt.Println("primary now:", db.GetString("greeting"))
	v.Close()
	// Output:
	// initialized: hello
	// primary now: bonjour
}

// ExampleView_SetMode shows the run-time weak→strong switch and the
// invalidation it causes — the paper's viewer-becomes-buyer transition.
func ExampleView_SetMode() {
	sys, _ := flecc.New("db", flecc.NewMapCodec())
	defer sys.Close()
	v1, _ := sys.NewView(flecc.ViewConfig{
		Name: "viewer", View: flecc.NewMapCodec(), Props: flecc.MustProps("P={x}"),
	})
	v2, _ := sys.NewView(flecc.ViewConfig{
		Name: "buyer", View: flecc.NewMapCodec(), Props: flecc.MustProps("P={x}"),
	})
	v1.Pull()
	v2.SetMode(flecc.Strong)
	v2.Pull()
	fmt.Println("viewer still valid:", v1.Valid())
	// Output:
	// viewer still valid: false
}

// ExampleSystem_Unseen shows the paper's data-quality metric: the number
// of remote updates a view has not yet seen.
func ExampleSystem_Unseen() {
	sys, _ := flecc.New("db", flecc.NewMapCodec())
	defer sys.Close()
	writer := flecc.NewMapCodec()
	w, _ := sys.NewView(flecc.ViewConfig{
		Name: "writer", View: writer, Props: flecc.MustProps("P={x}"),
	})
	reader, _ := sys.NewView(flecc.ViewConfig{
		Name: "reader", View: flecc.NewMapCodec(), Props: flecc.MustProps("P={x}"),
	})
	for i := 0; i < 3; i++ {
		w.Use(func() error { writer.SetString("k", fmt.Sprint(i)); return nil })
		w.Push()
	}
	fmt.Println("reader staleness:", sys.Unseen("reader"))
	reader.Pull()
	fmt.Println("after pull:", sys.Unseen("reader"))
	// Output:
	// reader staleness: 3
	// after pull: 0
}

// ExampleMustProps shows the property-set literal syntax.
func ExampleMustProps() {
	p := flecc.MustProps("Flights={100..102}; Seats=[0,400]")
	fmt.Println(p)
	// Output:
	// Flights={100,101,102}; Seats=[0,400]
}
