// Package flecc is a Go implementation of Flecc, the flexible,
// application-neutral cache coherence protocol for dynamic component-based
// systems (Ivan & Karamcheti, IPPS 2004), together with the Partitionable
// Services Framework substrate it was designed for.
//
// Flecc keeps replicated component views coherent using three pieces of
// application-specific — but semantically opaque — information:
//
//   - data properties (which views share data),
//   - quality triggers (when to push/pull/validate),
//   - extract/merge methods (what state moves, and how conflicts resolve).
//
// A deployment has one directory manager attached to the original
// component (the primary copy) and one cache manager per view. Views run
// in strong mode (one active view, one-copy serializability) or weak mode
// (many active views, relaxed freshness), and can switch at run time.
//
// # Quick start
//
//	db := myComponent{}                     // implements flecc.Codec
//	sys, _ := flecc.New("db", db)           // directory manager + in-proc net
//	view, _ := sys.NewView(flecc.ViewConfig{
//	    Name:  "replica-1",
//	    View:  myReplica{},                 // also a flecc.Codec
//	    Props: flecc.MustProps("Flights={100..109}"),
//	    Mode:  flecc.Weak,
//	})
//	view.Pull()
//	view.StartUse()
//	// ... work on the replica's data ...
//	view.EndUse()
//	view.Push()
//	view.Close()
//
// The subsystems live in internal packages (property algebra, trigger
// language, transports, simulated LAN, directory/cache managers, baseline
// protocols, PSF, experiments); this package is the stable façade.
package flecc

import (
	"fmt"

	"flecc/internal/cache"
	"flecc/internal/directory"
	"flecc/internal/image"
	"flecc/internal/metrics"
	"flecc/internal/netsim"
	"flecc/internal/property"
	"flecc/internal/registry"
	"flecc/internal/trace"
	"flecc/internal/trigger"
	"flecc/internal/vclock"
	"flecc/internal/wire"
)

// Re-exported core types. The aliases make the internal packages' types
// part of the public API without duplicating them.
type (
	// Mode is a view's consistency mode.
	Mode = wire.Mode
	// Image is the property-scoped state snapshot moved between views
	// and the original component.
	Image = image.Image
	// Entry is one keyed datum inside an Image.
	Entry = image.Entry
	// Codec is the application-supplied extract/merge implementation
	// (the paper's extractFromObject/mergeIntoObject and
	// extractFromView/mergeIntoView).
	Codec = image.Codec
	// Conflict is a concurrent-update conflict handed to a Resolver.
	Conflict = image.Conflict
	// Resolver adjudicates conflicts.
	Resolver = image.Resolver
	// Props is a set of data properties.
	Props = property.Set
	// Property is one (name, domain) data property.
	Property = property.Property
	// Time is a discrete virtual timestamp in milliseconds.
	Time = vclock.Time
	// Version is a primary-copy update counter.
	Version = vclock.Version
	// Relation is a static conflict-map cell (1/0/-1).
	Relation = registry.Relation
	// TriggerEnv supplies view variables to quality triggers.
	TriggerEnv = trigger.Env
	// PushFuture is the completion handle of one asynchronous push round
	// (see View.PushAsync).
	PushFuture = cache.PushFuture
)

// Consistency modes.
const (
	// Weak allows multiple simultaneously active views.
	Weak = wire.Weak
	// Strong enforces a single active view (one-copy serializability).
	Strong = wire.Strong
)

// Static conflict-map relations.
const (
	// NoConflict (0): the views never share data.
	NoConflict = registry.NoConflict
	// ConflictAlways (1): the views statically share data.
	ConflictAlways = registry.Conflict
	// DynamicConflict (-1): decide from the live property sets.
	DynamicConflict = registry.Dynamic
)

// Errors surfaced by views.
var (
	// ErrInvalidated: the image was invalidated; pull before use.
	ErrInvalidated = cache.ErrInvalidated
	// ErrNotInitialized: the image was used before Init.
	ErrNotInitialized = cache.ErrNotInitialized
	// ErrSessionReset: the session under an asynchronous push died (the
	// future's writes stay pending locally; push again after recovery).
	ErrSessionReset = cache.ErrSessionReset
)

// MustProps parses a property-set literal like "Flights={100..109};
// Seats=[0,400]" and panics on error; for static configuration.
func MustProps(s string) Props { return property.MustSet(s) }

// ParseProps parses a property-set literal.
func ParseProps(s string) (Props, error) { return property.ParseSet(s) }

// Option configures a System.
type Option func(*sysConfig)

type sysConfig struct {
	clock     *vclock.Sim
	latency   vclock.Duration
	resolver  image.Resolver
	readAware bool
	fanOut    int
	lanes     int
	stats     bool
	trace     bool
	traceCap  int
}

// WithLatency runs the system on a simulated LAN with the given one-way
// link latency in virtual milliseconds (default 0: all nodes co-located).
func WithLatency(ms int64) Option {
	return func(c *sysConfig) { c.latency = vclock.Duration(ms) }
}

// WithResolver installs the application conflict resolver at the primary.
func WithResolver(r Resolver) Option {
	return func(c *sysConfig) { c.resolver = r }
}

// WithReadAware enables the read/write-semantics extension: strong-mode
// readers coexist instead of invalidating each other.
func WithReadAware() Option {
	return func(c *sysConfig) { c.readAware = true }
}

// WithFanOut bounds how many views the directory manager contacts
// concurrently per invalidate/gather/propagate round. The default is 1:
// a System runs on the simulated network, where virtual latency is
// charged serially, so serial rounds cost nothing and keep traces and
// virtual timestamps deterministic. Raise it to exercise the concurrent
// hot path (real deployments via internal/directory default to
// directory.DefaultFanOut).
func WithFanOut(n int) Option {
	return func(c *sysConfig) { c.fanOut = n }
}

// WithLanes enables conflict-group-striped execution at the directory
// manager: commits from disjoint conflict groups run through n parallel
// execution lanes, with the store's per-key metadata striped and codec
// calls moved outside global locks. Requests within one conflict group
// keep arrival order. The default (0 or 1) is the serial path —
// byte-identical protocol behavior, which the deterministic experiment
// harness relies on.
func WithLanes(n int) Option {
	return func(c *sysConfig) { c.lanes = n }
}

// WithMessageStats enables message counting (see System.Messages).
func WithMessageStats() Option {
	return func(c *sysConfig) { c.stats = true }
}

// WithTrace records the last capacity protocol messages for debugging;
// System.Trace renders them as a text sequence diagram (capacity <= 0
// keeps 1024).
func WithTrace(capacity int) Option {
	return func(c *sysConfig) { c.traceCap = capacity; c.trace = true }
}

// System is one Flecc deployment: an original component with its directory
// manager, a (simulated) network, and any number of views.
type System struct {
	name  string
	net   *netsim.Net
	clock *vclock.Sim
	dm    *directory.Manager
	stats *metrics.MessageStats
	rec   *trace.Recorder
}

// New creates a system around the original component's codec. The system
// runs on an in-process network with a deterministic virtual clock.
func New(name string, primary Codec, opts ...Option) (*System, error) {
	cfg := &sysConfig{clock: vclock.NewSim()}
	for _, o := range opts {
		o(cfg)
	}
	topo := netsim.LAN(cfg.latency)
	topo.Place(name, "hub")
	net := netsim.New(cfg.clock, topo)
	// The transports carry an observer fan-out, so stats and tracing
	// register independently instead of sharing one combined hook.
	var stats *metrics.MessageStats
	var rec *trace.Recorder
	if cfg.stats {
		stats = metrics.NewMessageStats(false)
		net.AddObserver(stats)
	}
	if cfg.trace {
		rec = trace.NewRecorder(cfg.traceCap)
		net.AddObserver(rec)
	}
	fanOut := cfg.fanOut
	if fanOut == 0 {
		fanOut = 1 // serial by default on the simulated network (see WithFanOut)
	}
	dm, err := directory.New(name, primary, cfg.clock, net, directory.Options{
		Resolver:  cfg.resolver,
		ReadAware: cfg.readAware,
		FanOut:    fanOut,
		Lanes:     cfg.lanes,
	})
	if err != nil {
		return nil, err
	}
	return &System{name: name, net: net, clock: cfg.clock, dm: dm, stats: stats, rec: rec}, nil
}

// Trace renders the recorded message flow as a text sequence diagram
// (empty without WithTrace).
func (s *System) Trace() string {
	if s.rec == nil {
		return ""
	}
	return s.rec.String()
}

// Name returns the directory manager's node name.
func (s *System) Name() string { return s.name }

// Close shuts the directory manager down.
func (s *System) Close() error { return s.dm.Close() }

// Now returns the current virtual time.
func (s *System) Now() Time { return s.clock.Now() }

// AdvanceTo advances the virtual clock to t, firing any scheduled trigger
// evaluations on the way.
func (s *System) AdvanceTo(t Time) { s.clock.RunUntil(t) }

// CurrentVersion returns the primary copy's committed version.
func (s *System) CurrentVersion() Version { return s.dm.CurrentVersion() }

// Views returns the registered view names.
func (s *System) Views() []string { return s.dm.Views() }

// Unseen returns the committed remote updates a view has not observed —
// the paper's data-quality metric for the committed state.
func (s *System) Unseen(view string) int { return s.dm.UnseenCommitted(view) }

// Messages returns the number of protocol messages exchanged so far
// (requires WithMessageStats; otherwise 0).
func (s *System) Messages() int64 {
	if s.stats == nil {
		return 0
	}
	return s.stats.Total()
}

// SetStatic seeds a static conflict-map entry between two view names.
func (s *System) SetStatic(a, b string, rel Relation) { s.dm.Registry().SetStatic(a, b, rel) }

// ViewConfig describes a new view.
type ViewConfig struct {
	// Name is the view's unique node name.
	Name string
	// View is the view's extract/merge implementation.
	View Codec
	// Props declares which shared data the view works on.
	Props Props
	// Mode is the initial consistency mode (Weak by default).
	Mode Mode
	// Host optionally places the view on a named simulated host; views on
	// the same host exchange messages for free, views on distinct hosts
	// pay the system latency. Empty = co-located with everything.
	Host string
	// PushTrigger, PullTrigger, ValidityTrigger are quality-trigger
	// sources (e.g. "(t > 1500)", "every(500)", "staleness < 3").
	PushTrigger, PullTrigger, ValidityTrigger string
	// Vars exposes view variables to the triggers.
	Vars TriggerEnv
	// ReadOnly tags the view's pulls as read operations (used with
	// WithReadAware).
	ReadOnly bool
	// ManualFlush defers asynchronous push rounds (PushAsync) until Flush
	// or a draining synchronous operation. Deterministic harnesses use it
	// to keep every wire interaction an explicit step; interactive
	// deployments normally leave it false (rounds dispatch immediately).
	ManualFlush bool
}

// View is a deployed view: the public handle over its cache manager.
type View struct {
	cm  *cache.Manager
	sys *System
}

// NewView deploys a view and initializes its image (the paper's
// create-cache-manager + initImage steps). The returned View is ready for
// Pull/StartUse/EndUse/Push.
func (s *System) NewView(cfg ViewConfig) (*View, error) {
	if cfg.Host != "" {
		s.net.Topology().Place(cfg.Name, cfg.Host)
	}
	op := wire.OpWrite
	if cfg.ReadOnly {
		op = wire.OpRead
	}
	cm, err := cache.New(cache.Config{
		Name:            cfg.Name,
		Directory:       s.name,
		Net:             s.net,
		View:            cfg.View,
		Props:           cfg.Props,
		Mode:            cfg.Mode,
		PushTrigger:     cfg.PushTrigger,
		PullTrigger:     cfg.PullTrigger,
		ValidityTrigger: cfg.ValidityTrigger,
		Vars:            cfg.Vars,
		Clock:           s.clock,
		Op:              op,
		ManualFlush:     cfg.ManualFlush,
	})
	if err != nil {
		return nil, err
	}
	if err := cm.InitImage(); err != nil {
		cm.KillImage()
		return nil, fmt.Errorf("flecc: init view %s: %w", cfg.Name, err)
	}
	return &View{cm: cm, sys: s}, nil
}

// Name returns the view's node name.
func (v *View) Name() string { return v.cm.Name() }

// Pull updates the view's data from the primary (pullImage).
func (v *View) Pull() error { return v.cm.PullImage() }

// Push sends the view's modified data to the primary (pushImage).
func (v *View) Push() error { return v.cm.PushImage() }

// PushAsync starts (or joins) an asynchronous push round and returns its
// future. Adjacent calls coalesce: while one round is on the wire the next
// buffers behind it, and every caller that joined the buffered round
// shares one future — W rapid writers cost two push rounds, not W. Rounds
// complete in issue order. If the session dies under a round, its future
// resolves with ErrSessionReset and the writes stay pending locally (push
// again after recovery). Synchronous operations (Push, SetMode, SetProps,
// Close) drain outstanding rounds before proceeding.
func (v *View) PushAsync() *PushFuture { return v.cm.PushImageAsync() }

// Flush dispatches any buffered push round and waits for all outstanding
// rounds, returning the first error.
func (v *View) Flush() error { return v.cm.Flush() }

// PushPending reports whether an asynchronous push round is buffered or in
// flight.
func (v *View) PushPending() bool { return v.cm.PushPending() }

// StartUse opens a mutually exclusive work window (startUseImage).
func (v *View) StartUse() error { return v.cm.StartUse() }

// EndUse closes the work window (endUseImage).
func (v *View) EndUse() { v.cm.EndUse() }

// Use runs fn inside a pull + use window — the common per-operation
// pattern from the paper's Figure 3 loop.
func (v *View) Use(fn func() error) error {
	if err := v.Pull(); err != nil {
		return err
	}
	if err := v.StartUse(); err != nil {
		return err
	}
	defer v.EndUse()
	return fn()
}

// SetMode switches the view's consistency mode at run time.
func (v *View) SetMode(m Mode) error { return v.cm.SetMode(m) }

// Mode returns the current mode.
func (v *View) Mode() Mode { return v.cm.Mode() }

// SetProps installs a new property set at run time.
func (v *View) SetProps(p Props) error { return v.cm.SetProps(p) }

// Valid reports whether the view's image is valid (not invalidated).
func (v *View) Valid() bool { return v.cm.Valid() }

// Seen returns the primary version the view has observed.
func (v *View) Seen() Version { return v.cm.Seen() }

// PendingOps returns the number of unpublished use windows.
func (v *View) PendingOps() int { return v.cm.PendingOps() }

// ScheduleTriggers evaluates the view's push/pull triggers every period
// virtual milliseconds (on the system's simulated clock).
func (v *View) ScheduleTriggers(period Time) bool { return v.cm.ScheduleTriggers(period) }

// StopTriggers cancels the trigger scheduler.
func (v *View) StopTriggers() { v.cm.StopTriggers() }

// Close publishes pending changes and unregisters the view (killImage).
func (v *View) Close() error { return v.cm.KillImage() }

// MapCodec is a ready-made Codec over a string-keyed byte map, convenient
// for applications whose shared state is naturally a key/value bag. The
// zero value is not usable; construct with NewMapCodec.
type MapCodec struct {
	mu   chan struct{} // 1-buffered semaphore; avoids copying sync.Mutex
	data map[string][]byte
}

// NewMapCodec returns an empty map-backed codec.
func NewMapCodec() *MapCodec {
	m := &MapCodec{mu: make(chan struct{}, 1), data: map[string][]byte{}}
	return m
}

func (m *MapCodec) lock()   { m.mu <- struct{}{} }
func (m *MapCodec) unlock() { <-m.mu }

// Set stores a value.
func (m *MapCodec) Set(key string, value []byte) {
	m.lock()
	defer m.unlock()
	cp := make([]byte, len(value))
	copy(cp, value)
	m.data[key] = cp
}

// SetString stores a string value.
func (m *MapCodec) SetString(key, value string) { m.Set(key, []byte(value)) }

// Get loads a value (nil if absent).
func (m *MapCodec) Get(key string) []byte {
	m.lock()
	defer m.unlock()
	v, ok := m.data[key]
	if !ok {
		return nil
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp
}

// GetString loads a string value ("" if absent).
func (m *MapCodec) GetString(key string) string { return string(m.Get(key)) }

// Delete removes a key.
func (m *MapCodec) Delete(key string) {
	m.lock()
	defer m.unlock()
	delete(m.data, key)
}

// Len returns the number of keys.
func (m *MapCodec) Len() int {
	m.lock()
	defer m.unlock()
	return len(m.data)
}

// Extract implements Codec.
func (m *MapCodec) Extract(props Props) (*Image, error) {
	m.lock()
	defer m.unlock()
	img := image.New(props.Clone())
	for k, v := range m.data {
		cp := make([]byte, len(v))
		copy(cp, v)
		img.Put(image.Entry{Key: k, Value: cp})
	}
	return img, nil
}

// ExtractKeys implements image.KeyedExtractor: it snapshots just the
// requested keys (absent keys are omitted), letting the directory store
// serve delta pulls without walking the whole map. Like Extract, it does
// not interpret props.
func (m *MapCodec) ExtractKeys(props Props, keys []string) (*Image, error) {
	m.lock()
	defer m.unlock()
	img := image.New(props.Clone())
	for _, k := range keys {
		v, ok := m.data[k]
		if !ok {
			continue
		}
		cp := make([]byte, len(v))
		copy(cp, v)
		img.Put(image.Entry{Key: k, Value: cp})
	}
	return img, nil
}

// Merge implements Codec.
func (m *MapCodec) Merge(img *Image, props Props) error {
	m.lock()
	defer m.unlock()
	for k, e := range img.Entries {
		if e.Deleted {
			delete(m.data, k)
			continue
		}
		cp := make([]byte, len(e.Value))
		copy(cp, e.Value)
		m.data[k] = cp
	}
	return nil
}

var _ Codec = (*MapCodec)(nil)
var _ image.KeyedExtractor = (*MapCodec)(nil)
